"""Online streaming window monitor (the operational form of Section 7.2.2).

:class:`TurnstileWindowProcessor` answers historical window queries over a
finished stream; this module provides the *live* counterpart an operations
team would actually deploy: values arrive incrementally, panes seal on a
row-count boundary, the active window slides with turnstile updates, and a
callback fires the moment a window's quantile estimate crosses the alert
threshold.

The monitor holds at most ``window_panes`` sealed pane sketches plus the
open pane buffer — O(window) memory regardless of stream length — and each
pane boundary costs one merge, one subtract, and one cascade evaluation.

The sealed panes live in a fixed-capacity
:class:`~repro.store.PackedSketchStore` ring (``window_panes + 1`` rows,
reused round-robin), so pane state is columnar: sealing writes into one
row, the per-pane :class:`Pane` records carry zero-copy view sketches,
and :meth:`StreamingWindowMonitor.recompute_window` can re-merge the
whole ring in a single vectorized reduction — used every
``resync_every`` panes to cancel the float drift that pure
subtract/merge turnstile updates accumulate on unbounded streams.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from ..core.cascade import ThresholdCascade
from ..core.sketch import MomentsSketch
from ..core.solver import SolverConfig
from ..store import PackedSketchStore
from .sliding import Pane, WindowAlert


@dataclass(frozen=True)
class MonitorState:
    """Snapshot of the monitor after a pane boundary."""

    pane_index: int
    window_count: float
    alert: WindowAlert | None


class StreamingWindowMonitor:
    """Incremental sliding-window threshold monitor over a value stream.

    Parameters
    ----------
    pane_size:
        Rows per pane (the paper's ten-minute granularity, by count).
    window_panes:
        Panes per query window (e.g. 24 for 4h windows of 10min panes).
    threshold, phi:
        Alert when ``quantile(phi) > threshold`` for the current window.
    on_alert:
        Optional callback invoked with each :class:`WindowAlert` as it
        fires (the "alerting" of Section 7.2.2).
    resync_every:
        Rebuild the window from the packed pane ring (one vectorized
        reduction) every this many sealed panes, cancelling turnstile
        float drift.  ``0`` (the default) disables periodic resync;
        :meth:`recompute_window` remains available for manual repair.
    """

    def __init__(self, pane_size: int, window_panes: int, threshold: float,
                 phi: float = 0.99, k: int = 10,
                 on_alert: Callable[[WindowAlert], None] | None = None,
                 config: SolverConfig | None = None,
                 resync_every: int = 0):
        if pane_size < 1:
            raise ValueError(f"pane_size must be positive, got {pane_size}")
        if window_panes < 1:
            raise ValueError(f"window_panes must be positive, got {window_panes}")
        if resync_every < 0:
            raise ValueError(f"resync_every must be >= 0, got {resync_every}")
        self.pane_size = int(pane_size)
        self.window_panes = int(window_panes)
        self.threshold = float(threshold)
        self.phi = float(phi)
        self.k = int(k)
        self.on_alert = on_alert
        self.config = config or SolverConfig()
        self.resync_every = int(resync_every)
        self.cascade = ThresholdCascade(config=self.config)

        # Pane ring: w+1 packed rows reused round-robin.  A sealing pane
        # claims slot index % (w+1); the slot it overwrites belonged to a
        # pane that slid out of the window one boundary earlier.
        self._ring = PackedSketchStore(k=self.k,
                                       capacity=self.window_panes + 1)
        for _ in range(self.window_panes + 1):
            self._ring.new_row()
        self._panes: deque[Pane] = deque()
        self._window: MomentsSketch | None = None
        self._open_values: list[float] = []
        self._pane_index = 0
        self.alerts: list[WindowAlert] = []
        self.states: list[MonitorState] = []

    # ------------------------------------------------------------------

    @property
    def window_ready(self) -> bool:
        """True once a full window of sealed panes exists."""
        return len(self._panes) == self.window_panes

    def ingest(self, values: Iterable[float]) -> list[WindowAlert]:
        """Feed stream values; returns any alerts raised by sealed panes.

        Thin shim over the unified ingestion API (:mod:`repro.ingest`):
        the batch is written through
        :class:`~repro.ingest.WindowWriteBackend` in a single flush
        (identical pane sealing, identical alerts).  Use an
        :class:`~repro.ingest.IngestSession` for buffered micro-batched
        writes and per-flush reports.
        """
        from ..ingest.backends import WindowWriteBackend
        from ..ingest.buffer import make_batch
        outcome = WindowWriteBackend(self).write(make_batch(values))
        return outcome.alerts or []

    def _ingest_values(self, values: Iterable[float]) -> list[WindowAlert]:
        """One-batch pane-sealing kernel behind :meth:`ingest`."""
        x = np.atleast_1d(np.asarray(values, dtype=float))
        new_alerts: list[WindowAlert] = []
        cursor = 0
        while cursor < x.size:
            room = self.pane_size - len(self._open_values)
            take = min(room, x.size - cursor)
            self._open_values.extend(x[cursor:cursor + take].tolist())
            cursor += take
            if len(self._open_values) == self.pane_size:
                alert = self._seal_pane()
                if alert is not None:
                    new_alerts.append(alert)
        return new_alerts

    def _seal_pane(self) -> WindowAlert | None:
        chunk = np.asarray(self._open_values)
        self._open_values = []
        slot = self._pane_index % (self.window_panes + 1)
        self._ring.clear_row(slot)
        self._ring.accumulate_row(slot, chunk)
        # The pane's sketch is a zero-copy view of its ring row; it stays
        # valid until the slot is reused, which happens only after the
        # pane has slid out of the window and been subtracted.
        pane = Pane(index=self._pane_index,
                    sketch=self._ring.sketch_at(slot, copy=False),
                    min=float(chunk.min()), max=float(chunk.max()),
                    count=float(chunk.size))
        self._pane_index += 1

        if self._window is None:
            self._window = pane.sketch.copy()
        else:
            self._window.merge(pane.sketch)
        self._panes.append(pane)
        if len(self._panes) > self.window_panes:
            outgoing = self._panes.popleft()
            self._window.subtract(
                outgoing.sketch,
                new_min=min(p.min for p in self._panes),
                new_max=max(p.max for p in self._panes))
            if self.resync_every and pane.index % self.resync_every == 0:
                self._window = self.recompute_window()

        alert = None
        if self.window_ready:
            outcome = self.cascade.evaluate(self._window, self.threshold, self.phi)
            if outcome.result:
                alert = WindowAlert(start_pane=self._panes[0].index,
                                    end_pane=self._panes[-1].index,
                                    stage=outcome.stage)
                self.alerts.append(alert)
                if self.on_alert is not None:
                    self.on_alert(alert)
        self.states.append(MonitorState(pane_index=pane.index,
                                        window_count=self._window.count,
                                        alert=alert))
        return alert

    def flush(self) -> WindowAlert | None:
        """Seal a partial open pane (end-of-stream); returns its alert."""
        if not self._open_values:
            return None
        # Pad semantics: a short final pane is sealed as-is.
        original_size = self.pane_size
        self.pane_size = len(self._open_values)
        try:
            return self._seal_pane()
        finally:
            self.pane_size = original_size

    @property
    def current_window(self) -> MomentsSketch | None:
        """The live window sketch (None before the first sealed pane)."""
        return self._window

    def recompute_window(self) -> MomentsSketch:
        """Re-merge the sealed pane ring in one vectorized reduction.

        Bit-for-bit identical to merging the live panes sequentially in
        pane order — i.e. a drift-free replacement for the turnstile
        window.  Raises if no pane has been sealed yet.
        """
        if not self._panes:
            raise ValueError("no sealed panes to merge")
        slots = np.asarray(
            [p.index % (self.window_panes + 1) for p in self._panes],
            dtype=np.intp)
        return self._ring.batch_merge(slots)
