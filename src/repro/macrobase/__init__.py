"""Simplified MacroBase threshold-search engine (Section 7.2.1)."""

from .engine import (
    MacroBaseEngine, MacroBaseReport, MomentsCube, OutlierGroup,
    merge12a_query, merge12b_query,
)

__all__ = [
    "MacroBaseEngine", "MacroBaseReport", "MomentsCube", "OutlierGroup",
    "merge12a_query", "merge12b_query",
]
