"""Simplified MacroBase deployment (Section 7.2.1, Figures 12-13).

MacroBase [8] searches for dimension values whose outlier rate is unusually
high.  The paper's simplified deployment defines outliers as values above
the global 99th percentile ``t99`` and asks for subpopulations whose outlier
rate is at least ``r`` times the overall rate — equivalently, subpopulations
whose ``(1 - r * 0.01)``-quantile exceeds ``t99`` (with the paper's
``r = 30``: the 70th percentile).

Pipeline over a cube of pre-aggregated moments sketches:

1. merge everything and estimate ``t99`` (one max-entropy solve);
2. for every candidate subgroup, evaluate ``quantile(0.7) > t99`` with the
   threshold cascade — the Figure 12 lesion toggles cascade stages.

Two Merge12 baselines reproduce the comparison: ``merge12a`` runs the same
plan over a Merge12 cube; ``merge12b`` is the optimistic variant that
pre-computes per-cell counts above ``t99`` and just sums counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..core.cascade import CascadeStats, ThresholdCascade
from ..core.errors import QueryError
from ..core.sketch import MomentsSketch, merge_all
from ..core.quantile import safe_estimate_quantiles
from ..core.solver import SolverConfig
from ..summaries import Merge12Summary


@dataclass(frozen=True)
class OutlierGroup:
    """One reported subgroup: which dimension value tripped the threshold."""

    dimension: int
    value: object
    stage: str


@dataclass
class MacroBaseReport:
    """Query output plus the timing decomposition of Figure 12."""

    threshold: float
    groups: list[OutlierGroup]
    merge_seconds: float
    estimation_seconds: float
    cascade_stats: CascadeStats | None = None
    candidates_checked: int = 0

    @property
    def total_seconds(self) -> float:
        return self.merge_seconds + self.estimation_seconds


@dataclass
class MomentsCube:
    """Cube cells: dimension tuple -> moments sketch (plus raw counts cache
    for the optimistic counter baseline)."""

    cells: dict[tuple, MomentsSketch] = field(default_factory=dict)

    @classmethod
    def build(cls, dimension_columns: Sequence[np.ndarray], values: np.ndarray,
              k: int = 10) -> "MomentsCube":
        cube = cls()
        keys = list(zip(*[np.asarray(c) for c in dimension_columns]))
        values = np.asarray(values, dtype=float)
        order = sorted(range(len(keys)), key=lambda i: keys[i])
        sorted_keys = [keys[i] for i in order]
        sorted_values = values[order]
        start = 0
        for i in range(1, len(sorted_keys) + 1):
            if i == len(sorted_keys) or sorted_keys[i] != sorted_keys[start]:
                sketch = MomentsSketch(k=k)
                sketch.accumulate(sorted_values[start:i])
                cube.cells[tuple(sorted_keys[start])] = sketch
                start = i
        return cube

    @property
    def num_cells(self) -> int:
        return len(self.cells)


class MacroBaseEngine:
    """Threshold-search engine over a moments-sketch cube."""

    def __init__(self, cube: MomentsCube,
                 cascade_stages: tuple[str, ...] = ("simple", "markov", "rtt"),
                 config: SolverConfig | None = None):
        self.cube = cube
        self.config = config or SolverConfig()
        self.cascade = ThresholdCascade(config=self.config,
                                        enabled_stages=cascade_stages)

    # ------------------------------------------------------------------

    def global_quantile(self, phi: float = 0.99) -> tuple[float, float, MomentsSketch]:
        """Merge every cell and estimate the global phi-quantile."""
        start = time.perf_counter()
        merged = merge_all(self.cube.cells.values())
        merge_seconds = time.perf_counter() - start
        threshold = float(safe_estimate_quantiles(merged, [phi], self.config)[0])
        return threshold, merge_seconds, merged

    def _dimension_groups(self) -> dict[tuple[int, object], MomentsSketch]:
        """Roll cells up to every (dimension index, value) subpopulation."""
        groups: dict[tuple[int, object], MomentsSketch] = {}
        for key, sketch in self.cube.cells.items():
            for dim, value in enumerate(key):
                group_key = (dim, value)
                existing = groups.get(group_key)
                if existing is None:
                    groups[group_key] = sketch.copy()
                else:
                    existing.merge(sketch)
        return groups

    def find_outlier_groups(self, outlier_phi: float = 0.99,
                            rate_multiplier: float = 30.0) -> MacroBaseReport:
        """The Section 7.2.1 query: subgroups with elevated outlier rates.

        With overall outlier rate ``1 - outlier_phi`` and multiplier ``r``,
        a subgroup qualifies when its outlier rate exceeds
        ``r * (1 - outlier_phi)`` — i.e. its ``1 - r (1 - outlier_phi)``
        quantile exceeds the global threshold.
        """
        group_phi = 1.0 - rate_multiplier * (1.0 - outlier_phi)
        if not 0.0 < group_phi < 1.0:
            raise QueryError(
                f"rate multiplier {rate_multiplier} out of range for "
                f"phi={outlier_phi}")
        threshold, global_merge_seconds, _ = self.global_quantile(outlier_phi)

        start = time.perf_counter()
        groups = self._dimension_groups()
        group_merge_seconds = time.perf_counter() - start

        found: list[OutlierGroup] = []
        start = time.perf_counter()
        for (dim, value), sketch in groups.items():
            outcome = self.cascade.evaluate(sketch, threshold, group_phi)
            if outcome.result:
                found.append(OutlierGroup(dimension=dim, value=value,
                                          stage=outcome.stage))
        estimation_seconds = time.perf_counter() - start
        return MacroBaseReport(
            threshold=threshold,
            groups=found,
            merge_seconds=global_merge_seconds + group_merge_seconds,
            estimation_seconds=estimation_seconds,
            cascade_stats=self.cascade.stats,
            candidates_checked=len(groups),
        )


# ----------------------------------------------------------------------
# Merge12 baselines (Figure 12's comparison bars)
# ----------------------------------------------------------------------

def merge12a_query(dimension_columns: Sequence[np.ndarray], values: np.ndarray,
                   outlier_phi: float = 0.99, rate_multiplier: float = 30.0,
                   k: int = 32, seed: int = 0) -> MacroBaseReport:
    """Same plan with Merge12 sketches merged during execution."""
    group_phi = 1.0 - rate_multiplier * (1.0 - outlier_phi)
    values = np.asarray(values, dtype=float)
    keys = list(zip(*[np.asarray(c) for c in dimension_columns]))
    cells: dict[tuple, Merge12Summary] = {}
    order = sorted(range(len(keys)), key=lambda i: keys[i])
    start_i = 0
    sorted_keys = [keys[i] for i in order]
    sorted_values = values[order]
    for i in range(1, len(sorted_keys) + 1):
        if i == len(sorted_keys) or sorted_keys[i] != sorted_keys[start_i]:
            summary = Merge12Summary(k=k, seed=seed)
            summary.accumulate(sorted_values[start_i:i])
            cells[tuple(sorted_keys[start_i])] = summary
            start_i = i

    start = time.perf_counter()
    everything: Merge12Summary | None = None
    groups: dict[tuple[int, object], Merge12Summary] = {}
    for key, summary in cells.items():
        everything = summary.copy() if everything is None else everything.merge(summary)
        for dim, value in enumerate(key):
            group_key = (dim, value)
            if group_key in groups:
                groups[group_key].merge(summary)
            else:
                groups[group_key] = summary.copy()
    assert everything is not None
    merge_seconds = time.perf_counter() - start

    start = time.perf_counter()
    threshold = everything.quantile(outlier_phi)
    found = [OutlierGroup(dimension=dim, value=value, stage="estimate")
             for (dim, value), summary in groups.items()
             if summary.quantile(group_phi) > threshold]
    estimation_seconds = time.perf_counter() - start
    return MacroBaseReport(threshold=threshold, groups=found,
                           merge_seconds=merge_seconds,
                           estimation_seconds=estimation_seconds,
                           candidates_checked=len(groups))


def merge12b_query(dimension_columns: Sequence[np.ndarray], values: np.ndarray,
                   outlier_phi: float = 0.99, rate_multiplier: float = 30.0,
                   k: int = 32, seed: int = 0) -> MacroBaseReport:
    """Optimistic counter baseline: pre-computed counts above the threshold.

    Computes the global threshold from a Merge12 sketch of everything, then
    counts values above it per subgroup *directly from the raw rows* — a
    best case that is "not always a feasible substitute for merging
    summaries" (the threshold must be known before pre-aggregation).
    """
    values = np.asarray(values, dtype=float)
    summary = Merge12Summary(k=k, seed=seed)
    start = time.perf_counter()
    summary.accumulate(values)
    threshold = summary.quantile(outlier_phi)
    outlier_mask = values > threshold
    target_rate = rate_multiplier * (1.0 - outlier_phi)
    found: list[OutlierGroup] = []
    candidates = 0
    for dim, column in enumerate(dimension_columns):
        column = np.asarray(column)
        for value in np.unique(column):
            mask = column == value
            candidates += 1
            rate = float(outlier_mask[mask].mean()) if mask.any() else 0.0
            if rate > target_rate:
                found.append(OutlierGroup(dimension=dim, value=value, stage="counts"))
    total = time.perf_counter() - start
    return MacroBaseReport(threshold=threshold, groups=found,
                           merge_seconds=total, estimation_seconds=0.0,
                           candidates_checked=candidates)
