"""Parallel merge scaling (Appendix F, Figures 24-25).

Shards a pre-aggregated cell set across worker threads; each worker folds
its shard into a partial aggregate, and partials combine with a final
sequential merge — the map/reduce aggregation plan of Section 3.2.

Moments-sketch cells take the *packed* route: the cells live in (or are
packed into) one :class:`~repro.store.PackedSketchStore`, each worker
reduces a contiguous row slice with a single vectorized
:meth:`~repro.store.PackedSketchStore.batch_merge` (numpy releases the
GIL inside the reduction, so workers genuinely overlap), and the partial
sketches fold sequentially.  Other summary types keep the object-per-cell
loop.  Every scaling measurement also times the serial object-loop
baseline — the pre-packed code path — and reports the speedup against
it, so the scaling figures double as a packed-vs-loop regression check.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.sketch import MomentsSketch
from ..store import PackedSketchStore
from ..summaries.base import QuantileSummary
from ..summaries.moments_summary import MomentsSummary
from .cells import PackedCellSet, merge_cells


@dataclass(frozen=True)
class ParallelMergeResult:
    """Throughput measurement for one thread count.

    ``serial_seconds`` is the serial object-loop baseline over the same
    merge sequence (``None`` when not measured); ``route`` records which
    merge path produced ``seconds``.
    """

    threads: int
    num_merges: int
    seconds: float
    serial_seconds: float | None = None
    route: str = "loop"

    @property
    def merges_per_second(self) -> float:
        return self.num_merges / self.seconds if self.seconds > 0 else float("inf")

    @property
    def speedup(self) -> float | None:
        """Speedup over the serial object-loop baseline."""
        if self.serial_seconds is None or self.seconds <= 0:
            return None
        return self.serial_seconds / self.seconds


def parallel_merge(summaries: Sequence[QuantileSummary],
                   threads: int) -> tuple[QuantileSummary, float]:
    """Merge ``summaries`` with ``threads`` workers; returns (result, secs)."""
    if not summaries:
        raise ValueError("nothing to merge")
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    start = time.perf_counter()
    if threads == 1 or len(summaries) < 2 * threads:
        aggregate = merge_cells(summaries)
        return aggregate, time.perf_counter() - start
    shard_size = (len(summaries) + threads - 1) // threads
    shards = [summaries[i:i + shard_size]
              for i in range(0, len(summaries), shard_size)]
    with ThreadPoolExecutor(max_workers=threads) as pool:
        partials = list(pool.map(merge_cells, shards))
    aggregate = merge_cells(partials)
    return aggregate, time.perf_counter() - start


def parallel_merge_packed(store: PackedSketchStore, threads: int,
                          rows: np.ndarray | None = None
                          ) -> tuple[MomentsSketch, float]:
    """Merge packed rows with ``threads`` workers of vectorized reductions.

    Each worker runs one :meth:`~repro.store.PackedSketchStore.batch_merge`
    over a contiguous slice of ``rows`` (which may repeat rows, e.g. for
    weak-scaling tiling); the per-worker partial sketches then fold
    sequentially.  Returns ``(merged sketch, seconds)``.
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if rows is None:
        rows = np.arange(len(store), dtype=np.intp)
    else:
        rows = np.asarray(rows, dtype=np.intp)
    if rows.size == 0:
        raise ValueError("nothing to merge")
    start = time.perf_counter()
    if threads == 1 or rows.size < 2 * threads:
        merged = store.batch_merge(rows)
        return merged, time.perf_counter() - start
    shards = np.array_split(rows, threads)
    with ThreadPoolExecutor(max_workers=threads) as pool:
        partials = list(pool.map(store.batch_merge, shards))
    merged = partials[0]
    for partial in partials[1:]:
        merged.merge(partial)
    return merged, time.perf_counter() - start


def _as_packed_store(cells) -> PackedSketchStore | None:
    """The packed store behind a cell collection, if it has one.

    Accepts a :class:`PackedSketchStore`, a :class:`PackedCellSet`, or a
    sequence of :class:`MomentsSummary` cells (packed on the fly); any
    other summary type returns ``None`` and keeps the object loop.
    """
    if isinstance(cells, PackedSketchStore):
        return cells
    if isinstance(cells, PackedCellSet):
        return cells.store
    if (isinstance(cells, Sequence) and len(cells) > 0
            and all(isinstance(cell, MomentsSummary) for cell in cells)):
        return PackedSketchStore.from_sketches(
            [cell.sketch for cell in cells])
    return None


def _serial_loop_seconds(store: PackedSketchStore,
                         rows: np.ndarray) -> float:
    """Time the pre-packed baseline: a sequential object-merge loop."""
    sketches = store.sketches(copy=False)
    start = time.perf_counter()
    aggregate = sketches[rows[0]].copy()
    for row in rows[1:]:
        aggregate.merge(sketches[row])
    return time.perf_counter() - start


def strong_scaling(cells, thread_counts: Sequence[int]
                   ) -> list[ParallelMergeResult]:
    """Fixed total work, growing thread count (Figure 24).

    Moments cells run the packed vectorized route with the serial
    object-loop baseline attached (``result.speedup``); other summary
    types fall back to the object loop at every thread count.
    """
    store = _as_packed_store(cells)
    results = []
    if store is not None:
        rows = np.arange(len(store), dtype=np.intp)
        serial = _serial_loop_seconds(store, rows)
        for threads in thread_counts:
            _, seconds = parallel_merge_packed(store, threads, rows)
            results.append(ParallelMergeResult(
                threads=threads, num_merges=len(store) - 1, seconds=seconds,
                serial_seconds=serial, route="packed"))
        return results
    serial: float | None = None
    for threads in thread_counts:
        _, seconds = parallel_merge(cells, threads)
        if serial is None:
            serial = seconds if threads == 1 else None
        results.append(ParallelMergeResult(
            threads=threads, num_merges=len(cells) - 1, seconds=seconds,
            serial_seconds=serial, route="loop"))
    return results


def weak_scaling(cells, thread_counts: Sequence[int],
                 merges_per_thread: int) -> list[ParallelMergeResult]:
    """Fixed per-thread work, growing total (Figure 25).

    The cell list is tiled if a thread count requires more summaries than
    supplied.  Moments cells run the packed route (tiled row indices into
    one store) with the serial object-loop baseline attached.
    """
    store = _as_packed_store(cells)
    results = []
    for threads in thread_counts:
        needed = merges_per_thread * threads
        if store is not None:
            rows = np.arange(needed, dtype=np.intp) % len(store)
            serial = _serial_loop_seconds(store, rows)
            _, seconds = parallel_merge_packed(store, threads, rows)
            results.append(ParallelMergeResult(
                threads=threads, num_merges=needed - 1, seconds=seconds,
                serial_seconds=serial, route="packed"))
            continue
        pool_cells = list(cells)
        while len(pool_cells) < needed:
            pool_cells.extend(cells)
        subset = pool_cells[:needed]
        _, seconds = parallel_merge(subset, threads)
        results.append(ParallelMergeResult(
            threads=threads, num_merges=needed - 1, seconds=seconds,
            route="loop"))
    return results
