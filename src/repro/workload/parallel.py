"""Parallel merge scaling (Appendix F, Figures 24-25).

Shards a pre-aggregated cell set across worker threads; each worker folds
its shard into a partial aggregate, and partials combine with a final
sequential merge — the map/reduce aggregation plan of Section 3.2.

Python threads serialize pure-Python bytecode under the GIL, but the
summaries here spend their merge time in numpy kernels that release it, so
scaling is observable (and, as in the paper, tapers once per-thread work
shrinks).  The strong/weak-scaling benchmark records the same two series
as Figures 24 and 25.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from ..summaries.base import QuantileSummary
from .cells import merge_cells


@dataclass(frozen=True)
class ParallelMergeResult:
    """Throughput measurement for one thread count."""

    threads: int
    num_merges: int
    seconds: float

    @property
    def merges_per_second(self) -> float:
        return self.num_merges / self.seconds if self.seconds > 0 else float("inf")


def parallel_merge(summaries: Sequence[QuantileSummary],
                   threads: int) -> tuple[QuantileSummary, float]:
    """Merge ``summaries`` with ``threads`` workers; returns (result, secs)."""
    if not summaries:
        raise ValueError("nothing to merge")
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    start = time.perf_counter()
    if threads == 1 or len(summaries) < 2 * threads:
        aggregate = merge_cells(summaries)
        return aggregate, time.perf_counter() - start
    shard_size = (len(summaries) + threads - 1) // threads
    shards = [summaries[i:i + shard_size]
              for i in range(0, len(summaries), shard_size)]
    with ThreadPoolExecutor(max_workers=threads) as pool:
        partials = list(pool.map(merge_cells, shards))
    aggregate = merge_cells(partials)
    return aggregate, time.perf_counter() - start


def strong_scaling(summaries: Sequence[QuantileSummary],
                   thread_counts: Sequence[int]) -> list[ParallelMergeResult]:
    """Fixed total work, growing thread count (Figure 24)."""
    results = []
    for threads in thread_counts:
        _, seconds = parallel_merge(summaries, threads)
        results.append(ParallelMergeResult(
            threads=threads, num_merges=len(summaries) - 1, seconds=seconds))
    return results


def weak_scaling(summaries: Sequence[QuantileSummary],
                 thread_counts: Sequence[int],
                 merges_per_thread: int) -> list[ParallelMergeResult]:
    """Fixed per-thread work, growing total (Figure 25).

    The cell list is tiled if a thread count requires more summaries than
    supplied.
    """
    results = []
    for threads in thread_counts:
        needed = merges_per_thread * threads
        pool_cells = list(summaries)
        while len(pool_cells) < needed:
            pool_cells.extend(summaries)
        subset = pool_cells[:needed]
        _, seconds = parallel_merge(subset, threads)
        results.append(ParallelMergeResult(
            threads=threads, num_merges=needed - 1, seconds=seconds))
    return results
