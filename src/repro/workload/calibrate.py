"""Summary-size calibration for accuracy targets (Table 2, Section 6.2.1).

Figure 3 compares query times "when each summary is instantiated at the
smallest size sufficient to achieve eps_avg <= .01 accuracy".  This module
searches each summary's size-parameter ladder for that smallest setting on
a given dataset, reproducing Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..summaries import (
    EquiWidthHistogramSummary,
    GKSummary,
    Merge12Summary,
    MomentsSummary,
    RandomSummary,
    SamplingSummary,
    StreamingHistogramSummary,
    TDigestSummary,
)
from ..summaries.base import QuantileSummary
from .cells import PHI_GRID, build_cells, mean_error, merge_cells


@dataclass(frozen=True)
class LadderEntry:
    """One parameter setting on a summary's size ladder."""

    label: str
    factory: Callable[[], QuantileSummary]


@dataclass(frozen=True)
class CalibrationResult:
    """Smallest setting meeting the target, with its observed metrics."""

    summary_name: str
    parameter_label: str
    factory: Callable[[], QuantileSummary]
    size_bytes: int
    mean_error: float
    achieved_target: bool


def parameter_ladders(seed: int = 0) -> dict[str, list[LadderEntry]]:
    """Size-parameter ladders per summary, smallest first.

    Mirrors the parameter families of Table 2 (k for M-Sketch/Merge12,
    epsilon for GK/RandomW, delta for T-Digest, counts for the rest).
    """
    return {
        "M-Sketch": [LadderEntry(f"k={k}", lambda k=k: MomentsSummary(k=k))
                     for k in (3, 4, 6, 8, 10, 12)],
        "Merge12": [LadderEntry(f"k={k}", lambda k=k: Merge12Summary(k=k, seed=seed))
                    for k in (8, 16, 32, 64, 128)],
        "RandomW": [LadderEntry(f"b={b}", lambda b=b: RandomSummary(buffer_size=b, seed=seed))
                    for b in (32, 64, 128, 256, 512)],
        "GK": [LadderEntry(f"eps=1/{d}", lambda d=d: GKSummary(epsilon=1.0 / d))
               for d in (20, 40, 60, 100, 160)],
        "T-Digest": [LadderEntry(f"delta={d}", lambda d=d: TDigestSummary(delta=d))
                     for d in (20.0, 50.0, 100.0, 200.0, 400.0)],
        "Sampling": [LadderEntry(f"s={s}", lambda s=s: SamplingSummary(capacity=s, seed=seed))
                     for s in (250, 1000, 4000, 16000)],
        "S-Hist": [LadderEntry(f"bins={b}", lambda b=b: StreamingHistogramSummary(max_bins=b))
                   for b in (100, 400, 1600, 6400)],
        "EW-Hist": [LadderEntry(f"bins={b}", lambda b=b: EquiWidthHistogramSummary(max_bins=b))
                    for b in (15, 100, 400, 1600, 6400)],
    }


def calibrate(data: np.ndarray, ladder: Sequence[LadderEntry],
              summary_name: str, target: float = 0.01,
              cell_size: int = 200,
              phis: np.ndarray = PHI_GRID) -> CalibrationResult:
    """Walk the ladder (smallest first) until the merged-accuracy target.

    Accuracy is measured the way the paper uses the summaries: build
    per-cell summaries, merge them all, then query — so any merge-time
    accuracy loss counts against the summary.  If nothing on the ladder
    reaches the target, the largest setting is returned with
    ``achieved_target=False`` (the paper does the same for EW-Hist/S-Hist
    on milan, reporting timings at 100 bins "for comparison").
    """
    data = np.asarray(data, dtype=float)
    last: CalibrationResult | None = None
    for entry in ladder:
        cells = build_cells(data, entry.factory, cell_size=cell_size)
        aggregate = merge_cells(cells.summaries)
        error = mean_error(data, aggregate, phis)
        last = CalibrationResult(
            summary_name=summary_name,
            parameter_label=entry.label,
            factory=entry.factory,
            size_bytes=aggregate.size_bytes(),
            mean_error=error,
            achieved_target=error <= target,
        )
        if last.achieved_target:
            return last
    assert last is not None
    return last


def calibrate_all(data: np.ndarray, target: float = 0.01,
                  cell_size: int = 200, seed: int = 0,
                  names: Sequence[str] | None = None) -> dict[str, CalibrationResult]:
    """Table 2: the smallest qualifying parameter for every summary."""
    ladders = parameter_ladders(seed=seed)
    selected = names if names is not None else list(ladders)
    return {name: calibrate(data, ladders[name], name, target=target,
                            cell_size=cell_size)
            for name in selected}
