"""Benchmark workload harness: cells, timing runner, calibration, parallel."""

from .cells import (PHI_GRID, CellSet, PackedCellSet, build_cells,
                    build_packed_cells, ingest_packed_cells, mean_error,
                    merge_cells, quantile_errors)
from .runner import (GroupQueryTiming, QueryTiming, run_group_query,
                     run_packed_query, run_query, time_estimation,
                     time_merges)
from .calibrate import CalibrationResult, calibrate, calibrate_all, parameter_ladders
from .parallel import (ParallelMergeResult, parallel_merge,
                       parallel_merge_packed, strong_scaling, weak_scaling)

__all__ = [
    "PHI_GRID", "CellSet", "PackedCellSet", "build_cells",
    "build_packed_cells", "ingest_packed_cells", "mean_error", "merge_cells",
    "quantile_errors", "GroupQueryTiming", "QueryTiming", "run_query",
    "run_group_query", "run_packed_query",
    "time_estimation", "time_merges", "CalibrationResult", "calibrate",
    "calibrate_all", "parameter_ladders", "ParallelMergeResult",
    "parallel_merge", "parallel_merge_packed", "strong_scaling",
    "weak_scaling",
]
