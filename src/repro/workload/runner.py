"""Query-time measurement harness (Sections 6.2.1-6.2.2).

Implements the paper's cost model ``t_query = t_merge * n_merge + t_est``
(Eq. 2) as direct measurements: given a pre-aggregated cell set, time the
merge fold and the final quantile estimation separately, so the Figure 4 /
Figure 5 / Figure 6 decompositions fall out of one runner.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..summaries.base import QuantileSummary
from .cells import PHI_GRID, CellSet, PackedCellSet, quantile_errors


def _api_query(backend, phis: np.ndarray):
    """Run one fused multi-quantile spec; return (estimates, rollup, timings).

    The shared execution path behind :func:`run_query` and
    :func:`run_packed_query`: both delegate to the unified query API so
    the measured merge/solve decomposition is exactly what
    :class:`~repro.api.QueryService` reports for any other client.
    """
    from ..api import QuerySpec, QueryService, qkey

    service = QueryService(cells=backend)
    spec = QuerySpec(kind="quantile",
                     quantiles=tuple(float(p) for p in np.asarray(phis)))
    response = service.execute(spec)
    estimates = np.asarray([response.estimates[qkey(p)] for p in phis])
    return estimates, service.last_rollup, response.timings


@dataclass(frozen=True)
class QueryTiming:
    """Measured decomposition of one aggregation query."""

    summary_name: str
    num_merges: int
    merge_seconds: float
    estimate_seconds: float
    mean_error: float
    size_bytes: int

    @property
    def total_seconds(self) -> float:
        return self.merge_seconds + self.estimate_seconds

    @property
    def merge_seconds_each(self) -> float:
        return self.merge_seconds / self.num_merges if self.num_merges else 0.0


def run_query(cells: CellSet, phis: np.ndarray = PHI_GRID,
              num_cells: int | None = None) -> QueryTiming:
    """Merge the cell summaries, estimate quantiles, time both phases.

    ``num_cells`` limits the merge fold (Figure 6's x-axis); ground-truth
    error is computed against exactly the data covered by the merged cells.
    """
    summaries: Sequence[QuantileSummary] = cells.summaries
    if num_cells is not None:
        summaries = summaries[:num_cells]
    if not summaries:
        raise ValueError("no cells to query")

    from ..api import SummariesBackend
    estimates, rollup, timings = _api_query(SummariesBackend(summaries), phis)
    aggregate = rollup.summary

    covered = cells.data[: len(summaries) * cells.cell_size]
    errors = quantile_errors(np.sort(covered), estimates, phis)
    return QueryTiming(
        summary_name=aggregate.name,
        num_merges=len(summaries) - 1,
        merge_seconds=timings.merge_seconds,
        estimate_seconds=timings.solve_seconds,
        mean_error=float(np.mean(errors)),
        size_bytes=aggregate.size_bytes(),
    )


def run_packed_query(cells: PackedCellSet, phis: np.ndarray = PHI_GRID,
                     num_cells: int | None = None) -> QueryTiming:
    """Packed counterpart of :func:`run_query`: one reduction, then estimate.

    The merge fold over ``n`` cells collapses into a single
    ``batch_merge`` reduction over the packed store's first ``n`` rows —
    the Eq. 2 merge term at hardware speed.  The merged sketch is
    bit-for-bit identical to :func:`run_query`'s sequential fold, so the
    reported error is directly comparable.
    """
    n = cells.num_cells if num_cells is None else min(num_cells, cells.num_cells)
    if n == 0:
        raise ValueError("no cells to query")

    from ..api import PackedStoreBackend
    backend = PackedStoreBackend(cells.store, config=cells.config,
                                 rows=np.arange(n))
    estimates, rollup, timings = _api_query(backend, phis)
    aggregate = rollup.summary

    covered = cells.data[: n * cells.cell_size]
    errors = quantile_errors(np.sort(covered), estimates, phis)
    return QueryTiming(
        summary_name=f"{aggregate.name} (packed)",
        num_merges=n - 1,
        merge_seconds=timings.merge_seconds,
        estimate_seconds=timings.solve_seconds,
        mean_error=float(np.mean(errors)),
        size_bytes=aggregate.size_bytes(),
    )


@dataclass(frozen=True)
class GroupQueryTiming:
    """Measured decomposition of one high-cardinality group-by query."""

    num_groups: int
    merge_seconds: float
    solve_seconds: float
    solve_calls: int
    solve_route: str

    @property
    def total_seconds(self) -> float:
        return self.merge_seconds + self.solve_seconds


def run_group_query(cells: PackedCellSet, q: float = 0.99,
                    num_cells: int | None = None,
                    batched: bool = True) -> GroupQueryTiming:
    """Group-by over packed cells (one group per cell), timed per phase.

    The workload harness's A/B hook for the batched estimation layer:
    with ``batched=True`` (the default) every group's max-entropy solve
    runs in one stacked Newton pass; ``batched=False`` replays the
    scalar one-solve-per-group plan.  Answers are within the batched
    layer's 1e-6 contract of each other; the returned timing carries
    ``solve_route``/``solve_calls`` so scripts can report the split.
    """
    from ..api import PackedStoreBackend, QuerySpec, QueryService

    n = cells.num_cells if num_cells is None else min(num_cells,
                                                      cells.num_cells)
    if n == 0:
        raise ValueError("no cells to query")
    rows = np.arange(n)
    backend = PackedStoreBackend(cells.store, keys=[(int(i),)
                                                    for i in range(cells.num_cells)],
                                 dimensions=("cell",), config=cells.config,
                                 rows=rows)
    service = QueryService(cells=backend, batched=batched)
    response = service.execute(QuerySpec(kind="group_by", quantiles=(q,),
                                         group_dimension="cell"))
    timings = response.timings
    return GroupQueryTiming(num_groups=len(response.groups or {}),
                            merge_seconds=timings.merge_seconds,
                            solve_seconds=timings.solve_seconds,
                            solve_calls=timings.solve_calls,
                            solve_route=timings.solve_route)


def time_merges(cells: CellSet, repeats: int = 1) -> float:
    """Average seconds per merge over the cell set (Figure 4's metric)."""
    total = 0.0
    merges = 0
    for _ in range(repeats):
        aggregate = cells.summaries[0].copy()
        start = time.perf_counter()
        for summary in cells.summaries[1:]:
            aggregate.merge(summary)
        total += time.perf_counter() - start
        merges += len(cells.summaries) - 1
    return total / merges if merges else 0.0


def time_estimation(summary: QuantileSummary, phis: np.ndarray = PHI_GRID,
                    repeats: int = 3) -> float:
    """Average seconds for one full quantile-estimation pass (Figure 5).

    Each repeat works on a fresh copy so estimator caches (the moments
    sketch memoizes its solve) do not hide the real cost.
    """
    total = 0.0
    for _ in range(repeats):
        fresh = summary.copy()
        start = time.perf_counter()
        fresh.quantiles(phis)
        total += time.perf_counter() - start
    return total / repeats
