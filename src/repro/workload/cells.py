"""Cell pre-aggregation for the microbenchmarks (Section 6.2.1).

The paper's performance benchmarks "pre-aggregate our datasets into cells
of 200 values and maintain quantile summaries for each cell", then measure
merge sequences over those cells.  This module builds such cell sets for
any summary type and provides the exact-quantile ground truth needed for
accuracy scoring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..summaries.base import QuantileSummary


@dataclass
class CellSet:
    """Pre-aggregated summaries over consecutive chunks of a dataset."""

    summaries: list[QuantileSummary]
    data: np.ndarray
    cell_size: int

    @property
    def num_cells(self) -> int:
        return len(self.summaries)


def build_cells(data: np.ndarray, factory: Callable[[], QuantileSummary],
                cell_size: int = 200) -> CellSet:
    """Chunk ``data`` into cells of ``cell_size`` and summarize each.

    Cells are grouped by sequence position, matching the microbenchmark
    setup (the engine evaluations group by column values instead).
    """
    data = np.asarray(data, dtype=float)
    if cell_size < 1:
        raise ValueError(f"cell_size must be positive, got {cell_size}")
    summaries = []
    for start in range(0, data.size, cell_size):
        summary = factory()
        summary.accumulate(data[start:start + cell_size])
        summaries.append(summary)
    return CellSet(summaries=summaries, data=data, cell_size=cell_size)


def merge_cells(cells: Sequence[QuantileSummary]) -> QuantileSummary:
    """Left-fold merge of a cell sequence into a fresh aggregate."""
    if not cells:
        raise ValueError("no cells to merge")
    aggregate = cells[0].copy()
    for summary in cells[1:]:
        aggregate.merge(summary)
    return aggregate


def quantile_errors(data_sorted: np.ndarray, estimates: np.ndarray,
                    phis: np.ndarray) -> np.ndarray:
    """Per-quantile error epsilon (paper Eq. 1) for estimates vs ground truth.

    The estimate's error is ``|rank(q) - floor(phi n)| / n`` where rank
    counts elements smaller than q.  When q coincides with duplicated
    values its rank is an *interval* [#elements < q, #elements <= q]; as in
    the benchmarking methodology of Luo et al. [52], the error is the
    distance from the target rank to that interval (zero if it falls
    inside), so summaries are not penalized for duplicate-heavy datasets
    where every possible answer shares a rank range.  On distinct-valued
    data this reduces to the plain definition.  ``data_sorted`` must be
    pre-sorted.
    """
    n = data_sorted.size
    lo = np.searchsorted(data_sorted, estimates, side="left")
    hi = np.searchsorted(data_sorted, estimates, side="right")
    targets = np.floor(np.asarray(phis) * n)
    below = np.clip(lo - targets, 0.0, None)
    above = np.clip(targets - hi, 0.0, None)
    return np.maximum(below, above) / n


#: The evaluation's quantile grid: 21 equally spaced phis in [0.01, 0.99].
PHI_GRID = np.linspace(0.01, 0.99, 21)


def mean_error(data: np.ndarray, summary: QuantileSummary,
               phis: np.ndarray = PHI_GRID) -> float:
    """epsilon_avg over the standard phi grid (Section 6.1)."""
    data_sorted = np.sort(np.asarray(data, dtype=float))
    estimates = summary.quantiles(phis)
    return float(np.mean(quantile_errors(data_sorted, estimates, phis)))
