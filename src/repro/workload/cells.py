"""Cell pre-aggregation for the microbenchmarks (Section 6.2.1).

The paper's performance benchmarks "pre-aggregate our datasets into cells
of 200 values and maintain quantile summaries for each cell", then measure
merge sequences over those cells.  This module builds such cell sets for
any summary type and provides the exact-quantile ground truth needed for
accuracy scoring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..core.solver import SolverConfig
from ..store import PackedSketchStore
from ..summaries.base import QuantileSummary
from ..summaries.moments_summary import MomentsSummary


@dataclass
class CellSet:
    """Pre-aggregated summaries over consecutive chunks of a dataset."""

    summaries: list[QuantileSummary]
    data: np.ndarray
    cell_size: int

    @property
    def num_cells(self) -> int:
        return len(self.summaries)


def build_cells(data: np.ndarray, factory: Callable[[], QuantileSummary],
                cell_size: int = 200) -> CellSet:
    """Chunk ``data`` into cells of ``cell_size`` and summarize each.

    Cells are grouped by sequence position, matching the microbenchmark
    setup (the engine evaluations group by column values instead).
    """
    data = np.asarray(data, dtype=float)
    if cell_size < 1:
        raise ValueError(f"cell_size must be positive, got {cell_size}")
    summaries = []
    for start in range(0, data.size, cell_size):
        summary = factory()
        summary.accumulate(data[start:start + cell_size])
        summaries.append(summary)
    return CellSet(summaries=summaries, data=data, cell_size=cell_size)


@dataclass
class PackedCellSet:
    """Moments-sketch cells held columnar in one packed store.

    The packed counterpart of :class:`CellSet` for merge-heavy
    microbenchmarks: row ``i`` of ``store`` is the cell over
    ``data[i * cell_size : (i+1) * cell_size]``.  ``summaries`` exposes
    the cells as :class:`MomentsSummary` objects (copies) for harness
    code that expects the generic interface.
    """

    store: PackedSketchStore
    data: np.ndarray
    cell_size: int
    config: SolverConfig = field(default_factory=SolverConfig)

    @property
    def num_cells(self) -> int:
        return len(self.store)

    @property
    def summaries(self) -> list[QuantileSummary]:
        return [self.wrap(sketch) for sketch in self.store.sketches()]

    def wrap(self, sketch) -> MomentsSummary:
        summary = MomentsSummary(k=self.store.k, track_log=self.store.track_log,
                                 config=self.config)
        summary.sketch = sketch
        return summary


def build_packed_cells(data: np.ndarray, cell_size: int = 200, k: int = 10,
                       track_log: bool = True,
                       config: SolverConfig | None = None,
                       batch_rows: int = 500_000) -> PackedCellSet:
    """Chunk ``data`` into packed cells with vectorized accumulation.

    Equivalent to ``build_cells(data, lambda: MomentsSummary(k=k), ...)``
    cell by cell (bit-for-bit), but ingestion runs through
    :meth:`PackedSketchStore.batch_accumulate` in slabs of ``batch_rows``
    values (bounding the transient Vandermonde matrix) instead of one
    Python-level accumulate per cell.
    """
    data = np.asarray(data, dtype=float)
    if cell_size < 1:
        raise ValueError(f"cell_size must be positive, got {cell_size}")
    num_cells = (data.size + cell_size - 1) // cell_size
    store = PackedSketchStore(k=k, track_log=track_log, capacity=num_cells)
    for _ in range(num_cells):
        store.new_row()
    # Slabs aligned to cell boundaries so each cell's values arrive in one
    # batch_accumulate call, matching a single accumulate() per cell.
    slab = max(batch_rows // cell_size, 1) * cell_size
    for start in range(0, data.size, slab):
        chunk = data[start:start + slab]
        rows = (start + np.arange(chunk.size)) // cell_size
        store.batch_accumulate(rows, chunk)
    return PackedCellSet(store=store, data=data, cell_size=cell_size,
                         config=config or SolverConfig())


def ingest_packed_cells(data: np.ndarray, cell_size: int = 200, k: int = 10,
                        track_log: bool = True,
                        config: SolverConfig | None = None) -> PackedCellSet:
    """:func:`build_packed_cells` through the unified ingestion API.

    Opens an :class:`~repro.ingest.IngestSession` over a fresh packed
    store with the cell index as the one dimension and streams the data
    through a single columnar flush — bit-for-bit the same cells as
    :func:`build_packed_cells`, demonstrating that the workload
    harness's pre-aggregation is just another client of the write
    surface (and giving harness code per-flush
    :class:`~repro.ingest.IngestReport` timings for free via the
    session).
    """
    from ..ingest import IngestSession, IngestSpec
    data = np.asarray(data, dtype=float)
    if cell_size < 1:
        raise ValueError(f"cell_size must be positive, got {cell_size}")
    store = PackedSketchStore(k=k, track_log=track_log)
    cell_ids = np.arange(data.size) // cell_size
    spec = IngestSpec(dimensions=("cell",), flush_rows=None)
    with IngestSession(store, spec) as session:
        session.append_columns(data, dims=[cell_ids])
    return PackedCellSet(store=store, data=data, cell_size=cell_size,
                         config=config or SolverConfig())


def merge_cells(cells: Sequence[QuantileSummary]) -> QuantileSummary:
    """Left-fold merge of a cell sequence into a fresh aggregate."""
    if not cells:
        raise ValueError("no cells to merge")
    aggregate = cells[0].copy()
    for summary in cells[1:]:
        aggregate.merge(summary)
    return aggregate


def quantile_errors(data_sorted: np.ndarray, estimates: np.ndarray,
                    phis: np.ndarray) -> np.ndarray:
    """Per-quantile error epsilon (paper Eq. 1) for estimates vs ground truth.

    The estimate's error is ``|rank(q) - floor(phi n)| / n`` where rank
    counts elements smaller than q.  When q coincides with duplicated
    values its rank is an *interval* [#elements < q, #elements <= q]; as in
    the benchmarking methodology of Luo et al. [52], the error is the
    distance from the target rank to that interval (zero if it falls
    inside), so summaries are not penalized for duplicate-heavy datasets
    where every possible answer shares a rank range.  On distinct-valued
    data this reduces to the plain definition.  ``data_sorted`` must be
    pre-sorted.
    """
    n = data_sorted.size
    lo = np.searchsorted(data_sorted, estimates, side="left")
    hi = np.searchsorted(data_sorted, estimates, side="right")
    targets = np.floor(np.asarray(phis) * n)
    below = np.clip(lo - targets, 0.0, None)
    above = np.clip(targets - hi, 0.0, None)
    return np.maximum(below, above) / n


#: The evaluation's quantile grid: 21 equally spaced phis in [0.01, 0.99].
PHI_GRID = np.linspace(0.01, 0.99, 21)


def mean_error(data: np.ndarray, summary: QuantileSummary,
               phis: np.ndarray = PHI_GRID) -> float:
    """epsilon_avg over the standard phi grid (Section 6.1)."""
    data_sorted = np.sort(np.asarray(data, dtype=float))
    estimates = summary.quantiles(phis)
    return float(np.mean(quantile_errors(data_sorted, estimates, phis)))
