"""Workload-driven roll-up advisor: rank hot scans, pin the winners.

The advisor closes the loop the paper's mergeability argument opens:
because moments sketches are tiny and merges are cheap left folds,
*materializing* a hot roll-up — keeping every group's merged sketch in
a :class:`~repro.store.PackedSketchStore` — costs a few hundred bytes
per group, yet removes the whole scan+merge phase from every query that
hits it.

Three pieces:

* :class:`WorkloadProfile` — an in-process tally of every scan the
  optimizer saw: request counts, cache hits, cold merge cost, partial
  bytes.  This is the live (per-scan-signature) counterpart of the
  telemetry plane's ``scan_signature_*`` counters.
* :class:`MaterializedRollup` — one pinned group scan held as a packed
  store (cold partials packed bit-exactly, PR 1's round-trip contract),
  re-materialized from the engine on first use after each flush epoch —
  a full cold re-merge, so served answers are bit-identical to a
  quiesced rerun rather than a drifted incremental fold.
* :class:`RollupAdvisor` — ranks candidates by
  ``requests x avg merge seconds saved / packed bytes`` and pins the
  top-k with the owning :class:`~repro.optimizer.Optimizer`.

:func:`rank_harness_record` / :func:`rank_metrics` are the offline
halves (the ``repro optimizer advise`` CLI): they read harness
trajectory records and telemetry metric dumps, which carry per-backend
aggregates rather than per-signature profiles, and surface the backends
and query kinds with the most merge time to reclaim.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..api.backends import GroupRollupResult, sketch_of
from ..core.errors import OptimizerError
from ..store import PackedSketchStore
from ..summaries.moments_summary import MomentsSummary

#: Query kinds whose scans are group roll-ups (materialization targets).
GROUP_KINDS = ("group_by", "top_n", "threshold_count")


@dataclass
class ScanStats:
    """Lifetime tally for one (engine token, scan signature)."""

    scan_key: tuple
    backend: str
    mode: str
    spec: object
    requests: int = 0
    hits: int = 0
    cold_runs: int = 0
    merge_seconds_total: float = 0.0
    nbytes: int = 0

    def avg_merge_seconds(self) -> float:
        return self.merge_seconds_total / max(self.cold_runs, 1)

    def score(self) -> float:
        """``hit frequency x merge cost saved / packed-store bytes``."""
        return (self.requests * self.avg_merge_seconds()
                / max(self.nbytes, 1))


class WorkloadProfile:
    """Thread-safe per-scan-signature workload tally."""

    def __init__(self):
        self._lock = threading.Lock()
        self._scans: dict[tuple, ScanStats] = {}

    def observe(self, token: int, plan, *, source: str,
                merge_seconds: float = 0.0, nbytes: int = 0) -> None:
        """Record one request against a scan signature.

        ``source`` is the serving tier: ``"cold"``/``"refresh"`` paid
        the merge (its cost and size are recorded); anything else was a
        cache or advisor hit.
        """
        key = (token,) + plan.scan_key
        with self._lock:
            stats = self._scans.get(key)
            if stats is None:
                stats = ScanStats(scan_key=plan.scan_key,
                                  backend=plan.backend_name,
                                  mode=plan.mode, spec=plan.spec)
                self._scans[key] = stats
            stats.requests += 1
            if source in ("cold", "refresh"):
                stats.cold_runs += 1
                stats.merge_seconds_total += float(merge_seconds)
                if nbytes:
                    stats.nbytes = int(nbytes)
            else:
                stats.hits += 1

    def candidates(self) -> list[tuple[tuple, ScanStats]]:
        """Snapshot of ``((token,) + scan_key, stats)`` pairs."""
        with self._lock:
            return list(self._scans.items())

    def summary(self) -> dict:
        """JSON-safe aggregate (embedded in harness records)."""
        with self._lock:
            scans = list(self._scans.values())
        requests = 0
        hits = 0
        merge_seconds = 0.0
        for stats in scans:
            requests += stats.requests
            hits += stats.hits
            merge_seconds += stats.merge_seconds_total
        return {"scans": len(scans), "requests": requests, "hits": hits,
                "cold_merge_seconds": merge_seconds}


class MaterializedRollup:
    """One pinned group roll-up, held as a packed store per flush epoch.

    ``refresh`` reruns the backend's own cold group scan and packs each
    group's sketch (store order = the cold groups-dict order, so
    ``top_n`` tie-breaking is unchanged); ``serve`` unpacks the rows
    back into :class:`~repro.summaries.MomentsSummary` objects carrying
    the cold summaries' solver configs.  Pack/unpack round trips are
    bit-exact, so a served answer equals the cold answer to the last
    bit.  A stale epoch triggers a refresh on first access — the cost of
    one cold scan per flush, not per query.
    """

    def __init__(self, token: int, scan_key: tuple, spec):
        self.token = token
        self.scan_key = scan_key
        self.spec = spec
        self.epoch: tuple | None = None
        self.store: PackedSketchStore | None = None
        self.group_values: list = []
        self.group_configs: list = []
        self.refreshes = 0
        self._result: GroupRollupResult | None = None

    def serve(self, backend, epoch: tuple) -> GroupRollupResult:
        """The pinned result at ``epoch``, refreshing if stale."""
        if self._result is None or epoch != self.epoch:
            self.refresh(backend, epoch)
        assert self._result is not None
        return self._result

    def refresh(self, backend, epoch: tuple) -> None:
        cold = backend.group_rollup(self.spec)
        sketches = []
        values = []
        configs = []
        for value, summary in cold.groups.items():
            sketch = sketch_of(summary)
            if sketch is None:
                raise OptimizerError(
                    "cannot materialize a group scan whose summaries are "
                    f"not moments-backed (scan {self.scan_key!r})")
            sketches.append(sketch)
            values.append(value)
            configs.append(getattr(summary, "config", None))
        self.store = PackedSketchStore.from_sketches(sketches)
        self.group_values = values
        self.group_configs = configs
        self.epoch = epoch
        self.refreshes += 1
        self._result = GroupRollupResult(
            groups=self._unpack(), cells_scanned=cold.cells_scanned,
            merge_calls=cold.merge_calls,
            planner_seconds=cold.planner_seconds,
            merge_seconds=cold.merge_seconds, route="materialized")

    def _unpack(self) -> dict:
        store = self.store
        assert store is not None
        groups: dict = {}
        for row, value in enumerate(self.group_values):
            summary = MomentsSummary(k=store.k, track_log=store.track_log,
                                     config=self.group_configs[row])
            summary.sketch = store.sketch_at(row)
            groups[value] = summary
        return groups

    def size_bytes(self) -> int:
        return self.store.size_bytes() if self.store is not None else 0

    def describe(self) -> dict:
        return {"scan_key": [repr(part) for part in self.scan_key],
                "groups": len(self.group_values),
                "bytes": self.size_bytes(),
                "refreshes": self.refreshes}


class RollupAdvisor:
    """Rank hot group scans from the live profile; pin the top-k."""

    def __init__(self, optimizer, top_k: int = 4, min_requests: int = 2):
        self.optimizer = optimizer
        self.top_k = int(top_k)
        self.min_requests = int(min_requests)

    def rank(self) -> list[dict]:
        """Group-scan candidates, best score first (JSON-safe)."""
        ranked = []
        for key, stats in self.optimizer.profile.candidates():
            if stats.mode != "group" or stats.requests < self.min_requests:
                continue
            ranked.append({
                "token": key[0],
                "scan_key": [repr(part) for part in stats.scan_key],
                "backend": stats.backend,
                "kind": stats.spec.kind,
                "requests": stats.requests,
                "hits": stats.hits,
                "avg_merge_seconds": stats.avg_merge_seconds(),
                "partial_bytes": stats.nbytes,
                "score": stats.score(),
                "_stats": stats,
            })
        ranked.sort(key=lambda item: (-item["score"],
                                      tuple(item["scan_key"])))
        return ranked

    def materialize(self, service, top_k: int | None = None) -> list[dict]:
        """Pin the top-k candidates with the optimizer.

        ``service`` resolves backend names to live adapters.  Candidates
        whose groups are not moments-backed are skipped.  Returns one
        :meth:`MaterializedRollup.describe` dict per pin (idempotent:
        already-pinned scans count toward ``top_k`` without re-pinning).
        """
        budget = self.top_k if top_k is None else int(top_k)
        pinned: list[dict] = []
        for item in self.rank():
            if len(pinned) >= budget:
                break
            stats = item.pop("_stats")
            backend = service.backend(stats.backend)
            try:
                rollup = self.optimizer.pin(backend, stats.spec,
                                            stats.scan_key)
            except OptimizerError:
                continue
            pinned.append(rollup.describe())
        return pinned


# ----------------------------------------------------------------------
# Offline ranking (the `repro optimizer advise` CLI)
# ----------------------------------------------------------------------

def rank_harness_record(record: dict, top: int = 5) -> list[dict]:
    """Advice from one harness trajectory record's latency section.

    Harness records aggregate per (backend, kind), so the offline
    ranking surfaces *where* a materialized roll-up or cache would pay:
    group-shaped kinds weighted by request count and the backend's mean
    merge share per query.
    """
    advice = []
    latency = record.get("latency", {})
    for backend_name in sorted(latency):
        kinds = latency[backend_name]
        phases = kinds.get("phase_totals", {})
        query_count = 0
        for kind in sorted(kinds):
            if kind in ("ingest", "phase_totals"):
                continue
            query_count += int(kinds[kind].get("count", 0))
        if not query_count:
            continue
        merge_per_query = (float(phases.get("merge_seconds", 0.0))
                           / query_count)
        for kind in sorted(kinds):
            if kind in ("ingest", "phase_totals"):
                continue
            count = int(kinds[kind].get("count", 0))
            if not count:
                continue
            advice.append({
                "backend": backend_name,
                "kind": kind,
                "requests": count,
                "est_merge_seconds_per_query": merge_per_query,
                "est_merge_seconds_saved": count * merge_per_query,
                "action": ("materialize group roll-up"
                           if kind in GROUP_KINDS else "cache responses"),
            })
    advice.sort(key=lambda item: (-item["est_merge_seconds_saved"],
                                  item["backend"], item["kind"]))
    return advice[:top]


def _metric_entries(metrics: dict, section: str, name: str) -> list[dict]:
    payload = metrics.get("metrics", metrics)
    return [entry for entry in payload.get(section, ())
            if entry.get("name") == name]


def rank_metrics(metrics: dict, top: int = 5) -> list[dict]:
    """Advice from a telemetry metrics dump (``repro telemetry dump``).

    Consumes the ``scan_signature_{hits,misses}_total`` counters: a
    backend with many repeated signatures (high hit potential) and many
    cold misses is the first place to enable the optimizer or pin
    roll-ups.
    """
    tallies: dict[str, dict] = {}
    for name, field_name in (("scan_signature_hits_total", "hits"),
                             ("scan_signature_misses_total", "misses")):
        for entry in _metric_entries(metrics, "counters", name):
            backend_name = entry.get("labels", {}).get("backend", "?")
            tally = tallies.setdefault(backend_name,
                                       {"hits": 0, "misses": 0})
            tally[field_name] += int(entry.get("value", 0))
    advice = []
    for backend_name in sorted(tallies):
        tally = tallies[backend_name]
        total = tally["hits"] + tally["misses"]
        if not total:
            continue
        advice.append({
            "backend": backend_name,
            "scans": total,
            "shared_or_cached": tally["hits"],
            "cold": tally["misses"],
            "hit_rate": tally["hits"] / total,
            "action": ("working set is repeat-heavy: enable the "
                       "optimizer cache / pin top roll-ups"
                       if tally["hits"] * 2 >= total else
                       "mostly distinct scans: caching pays less here"),
        })
    advice.sort(key=lambda item: (-item["scans"], item["backend"]))
    return advice[:top]
