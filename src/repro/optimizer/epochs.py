"""Flush-epoch clock: the cache-invalidation backbone of the optimizer.

Every cacheable artifact the multi-query optimizer holds — a merged
partial, a solved :class:`~repro.api.QueryResponse` payload, a
materialized roll-up — is only valid for the engine state it was
computed from.  The repo's write side is funnelled through
:class:`~repro.ingest.IngestSession` flushes (the legacy per-engine
entry points shim through :func:`repro.ingest.session.write_columns`),
so "engine state" has a natural clock: a monotonically increasing
**flush epoch** per engine object, bumped after every successful write.

:data:`EPOCHS` is the process-wide clock.  Engines are identified by a
stable integer *token* held alive by a weak reference, so adapters that
are rebuilt per query (the harness re-registers backends after every
flush) still share one epoch stream as long as they wrap the same
underlying engine object.  Cluster coordinators additionally keep a
**per-shard** epoch: replicated writes bump only the shards they
touched, so a point query pinned to shard 3 stays cached across writes
that only landed on shard 5
(:meth:`~repro.cluster.backend.ClusterBackend.scan_epoch` builds the
epoch vector for the shards a scan reads).

Failover and snapshot repair deliberately do *not* bump epochs: the
cluster's answers are bit-exact across node failures by construction
(PR 3), so cached payloads stay valid through them.
"""

from __future__ import annotations

import threading
import weakref
from typing import Iterable


class FlushEpochs:
    """Per-engine (and per-shard) monotonic flush counters.

    Thread-safe; all state is guarded by ``_lock``.  Tokens are keyed by
    object identity with a weakref cleanup, so a garbage-collected
    engine releases its counters (engines that do not support weak
    references are pinned instead — a deliberate, bounded leak that
    keeps identity honest against ``id()`` reuse).
    """

    def __init__(self):
        # Reentrant: a weakref cleanup can fire synchronously during a
        # collection triggered while this thread already holds the lock.
        self._lock = threading.RLock()
        self._next_token = 1
        #: id(engine) -> token.
        self._tokens: dict[int, int] = {}
        #: token -> weakref keeping the cleanup callback alive.
        self._refs: dict[int, weakref.ref] = {}
        #: Strong pins for non-weakref-able engines (identity safety).
        self._pins: dict[int, object] = {}
        #: token -> whole-engine epoch.
        self._epochs: dict[int, int] = {}
        #: (token, shard) -> shard epoch.
        self._shard_epochs: dict[tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # Tokens
    # ------------------------------------------------------------------

    def token(self, target) -> int:
        """Stable small-int identity for a live engine object."""
        with self._lock:
            return self._token_locked(target)

    def _token_locked(self, target) -> int:
        key = id(target)
        token = self._tokens.get(key)
        if token is not None:
            return token
        token = self._next_token
        self._next_token += 1
        self._tokens[key] = token
        try:
            self._refs[token] = weakref.ref(
                target, lambda _ref, key=key, token=token:
                self._release(key, token))
        except TypeError:
            # Not weakref-able (rare): pin it so id() is never reused.
            self._pins[token] = target
        return token

    def _release(self, key: int, token: int) -> None:
        """Weakref callback: drop a dead engine's counters."""
        with self._lock:
            if self._tokens.get(key) == token:
                del self._tokens[key]
            self._refs.pop(token, None)
            self._epochs.pop(token, None)
            self._shard_epochs = {
                pair: epoch for pair, epoch in self._shard_epochs.items()
                if pair[0] != token}

    # ------------------------------------------------------------------
    # Whole-engine epochs
    # ------------------------------------------------------------------

    def epoch(self, target) -> int:
        """Current flush epoch of an engine (0 before any flush)."""
        with self._lock:
            return self._epochs.get(self._token_locked(target), 0)

    def bump(self, target) -> int:
        """Advance an engine's epoch after a successful write."""
        with self._lock:
            token = self._token_locked(target)
            value = self._epochs.get(token, 0) + 1
            self._epochs[token] = value
            return value

    # ------------------------------------------------------------------
    # Per-shard epochs (cluster coordinators)
    # ------------------------------------------------------------------

    def shard_epoch(self, target, shard: int) -> int:
        with self._lock:
            token = self._token_locked(target)
            return self._shard_epochs.get((token, int(shard)), 0)

    def bump_shards(self, target, shards: Iterable[int]) -> None:
        """Advance only the shards a replicated write touched."""
        with self._lock:
            token = self._token_locked(target)
            for shard in shards:
                pair = (token, int(shard))
                self._shard_epochs[pair] = \
                    self._shard_epochs.get(pair, 0) + 1

    def epoch_vector(self, target, shards: Iterable[int]) -> tuple[int, ...]:
        """Epochs of the shards one scan reads, in the given order."""
        with self._lock:
            token = self._token_locked(target)
            return tuple(self._shard_epochs.get((token, int(shard)), 0)
                         for shard in shards)

    # ------------------------------------------------------------------
    # Test support
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Forget every token and counter (test isolation only)."""
        with self._lock:
            self._tokens.clear()
            self._refs.clear()
            self._pins.clear()
            self._epochs.clear()
            self._shard_epochs.clear()


#: Process-wide flush-epoch clock.
EPOCHS = FlushEpochs()
