"""Multi-query optimizer: shared scans, epoch-invalidated caches, advisor.

Import surface is deliberately split: :mod:`repro.ingest.session` needs
only the flush-epoch clock, so ``EPOCHS``/``FlushEpochs`` and the cache
load eagerly, while :class:`Optimizer` and the advisor (which import the
api layer) resolve lazily to keep ``repro.ingest`` -> ``repro.optimizer``
-> ``repro.api`` from becoming an import cycle.
"""

from __future__ import annotations

from .cache import DEFAULT_BUDGET_BYTES, MergeCache
from .epochs import EPOCHS, FlushEpochs

__all__ = [
    "DEFAULT_BUDGET_BYTES",
    "EPOCHS",
    "FlushEpochs",
    "MergeCache",
    "MaterializedRollup",
    "Optimizer",
    "RollupAdvisor",
    "WorkloadProfile",
    "rank_harness_record",
    "rank_metrics",
]

_LAZY = {
    "Optimizer": ("planner", "Optimizer"),
    "MaterializedRollup": ("advisor", "MaterializedRollup"),
    "RollupAdvisor": ("advisor", "RollupAdvisor"),
    "WorkloadProfile": ("advisor", "WorkloadProfile"),
    "rank_harness_record": ("advisor", "rank_harness_record"),
    "rank_metrics": ("advisor", "rank_metrics"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    from importlib import import_module
    module = import_module(f".{module_name}", __name__)
    value = getattr(module, attr)
    globals()[name] = value
    return value
