"""Epoch-invalidated, byte-budgeted LRU cache for merges and answers.

:class:`MergeCache` holds two tiers of artifacts, both keyed by the
planner's scan identity plus the engine token from
:mod:`repro.optimizer.epochs`:

* **partial** — the merged roll-up a cold scan produced (a
  :class:`~repro.api.backends.RollupResult` or
  :class:`~repro.api.backends.GroupRollupResult`; for moments summaries
  ~200 bytes of packed state per cell).  A hit skips the scan + merge
  fold entirely; the solve still runs, so any spec sharing the scan
  signature benefits regardless of its quantiles/thresholds.
* **response** — a fully solved :class:`~repro.api.QueryResponse`
  payload, additionally keyed by the solve signature (kind, quantiles,
  thresholds, estimator, ...).  A hit skips everything.

Bit-exactness is guaranteed by construction: entries are the *cold
path's own outputs*, stored and returned unchanged — never re-derived
from other partials, whose re-association could drift in the last ulp
(numpy's pairwise reductions are not sequential folds).

Every entry is stamped with the flush epoch it was computed at; a
lookup under a different epoch is a miss and eagerly drops the stale
entry.  Eviction is LRU over a byte budget.  All state is guarded by
``_lock`` (enforced by the ``repro.analysis`` GUARDED_BY gate).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..telemetry import TELEMETRY

#: Default byte budget: a few thousand partials / responses.
DEFAULT_BUDGET_BYTES = 32 << 20


@dataclass
class _Entry:
    epoch: tuple
    value: object
    nbytes: int
    tier: str


class MergeCache:
    """Byte-budgeted LRU of epoch-stamped partials and responses."""

    def __init__(self, budget_bytes: int = DEFAULT_BUDGET_BYTES):
        self.budget_bytes = int(budget_bytes)
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self.bytes_used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stale_drops = 0

    def get(self, key: tuple, epoch: tuple, tier: str):
        """The cached value for ``key`` at ``epoch``, or None (a miss).

        An entry stamped with a different epoch counts as a miss and is
        dropped on the spot — ingest invalidation is lazy, paid by the
        first reader instead of every flush.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.epoch == epoch:
                self._entries.move_to_end(key)
                self.hits += 1
                hit, value = True, entry.value
            else:
                if entry is not None:
                    del self._entries[key]
                    self.bytes_used -= entry.nbytes
                    self.stale_drops += 1
                self.misses += 1
                hit, value = False, None
            used = self.bytes_used
        if TELEMETRY.enabled:
            TELEMETRY.registry.counter(
                "optimizer_cache_hits_total" if hit
                else "optimizer_cache_misses_total", tier=tier).inc()
            TELEMETRY.registry.gauge("optimizer_cache_bytes").set(used)
        return value

    def put(self, key: tuple, epoch: tuple, value, nbytes: int,
            tier: str) -> None:
        """Insert (or replace) an entry, evicting LRU past the budget."""
        nbytes = max(int(nbytes), 1)
        evicted = 0
        with self._lock:
            if nbytes <= self.budget_bytes:
                old = self._entries.pop(key, None)
                if old is not None:
                    self.bytes_used -= old.nbytes
                self._entries[key] = _Entry(epoch=epoch, value=value,
                                            nbytes=nbytes, tier=tier)
                self.bytes_used += nbytes
                while self.bytes_used > self.budget_bytes:
                    _, dropped = self._entries.popitem(last=False)
                    self.bytes_used -= dropped.nbytes
                    self.evictions += 1
                    evicted += 1
            used = self.bytes_used
        if TELEMETRY.enabled:
            if evicted:
                TELEMETRY.registry.counter(
                    "optimizer_cache_evictions_total").inc(evicted)
            TELEMETRY.registry.gauge("optimizer_cache_bytes").set(used)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.bytes_used = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """Counters snapshot (JSON-safe; the harness embeds it)."""
        with self._lock:
            lookups = self.hits + self.misses
            return {"entries": len(self._entries),
                    "bytes": self.bytes_used,
                    "budget_bytes": self.budget_bytes,
                    "hits": self.hits,
                    "misses": self.misses,
                    "hit_rate": (self.hits / lookups if lookups else 0.0),
                    "evictions": self.evictions,
                    "stale_drops": self.stale_drops}
