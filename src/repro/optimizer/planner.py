"""The multi-query optimizer facade wired into ``QueryService``.

:class:`Optimizer` is the one object the service talks to.  Per query it
answers three questions, in the order the service asks them:

1. *What engine state would this scan read?* — :meth:`scan_epoch`
   resolves the backend's cache target (the underlying engine object,
   shared across rebuilt adapters) to a flush-epoch vector.  Cluster
   backends narrow this to the shards the scan actually touches.
2. *Is the whole answer cached?* — :meth:`cached_response` keys the
   :class:`~repro.optimizer.MergeCache` response tier by scan signature
   *plus* solve signature, so two specs sharing a scan but asking for
   different quantiles miss here and meet again at the partial tier.
3. *Is the merged partial cached, or pinned by the advisor?* —
   :meth:`lookup_scan` checks materialized roll-ups first (refreshing
   stale ones from the engine), then the partial tier.

Everything stored is a cold path output kept verbatim — the optimizer
never folds two partials together to answer a query, because numpy's
pairwise reductions mean a re-associated fold is not guaranteed to be
bit-identical to the sequential left-fold the cold path performs.  That
single rule is what lets cached answers pass the harness's cross-backend
payload-agreement and exact-oracle gates untouched.
"""

from __future__ import annotations

import threading

from .advisor import MaterializedRollup, RollupAdvisor, WorkloadProfile
from .cache import DEFAULT_BUDGET_BYTES, MergeCache
from .epochs import EPOCHS


def _scan_nbytes(result) -> int:
    """Approximate heap bytes of a cached partial (budget accounting)."""
    groups = getattr(result, "groups", None)
    if groups is None:
        summaries = [result.summary]
    else:
        summaries = list(groups.values())
    total = 96  # result object + profile fields
    for summary in summaries:
        size = getattr(summary, "size_bytes", None)
        total += int(size()) if size is not None else 512
        total += 128  # summary wrapper + dict slot
    return total


class Optimizer:
    """Shared-subexpression cache + workload advisor for one service.

    Opt-in: construct one and pass it to
    :class:`~repro.api.QueryService`.  Requires the write side to go
    through :class:`~repro.ingest.IngestSession` (or the legacy shims
    that funnel into it), which is what advances the flush epochs this
    cache is invalidated by; writes straight into a kernel object bypass
    the clock, which is why the optimizer is never on by default.
    """

    def __init__(self, cache: MergeCache | None = None,
                 budget_bytes: int = DEFAULT_BUDGET_BYTES,
                 advisor_top_k: int = 4):
        self.cache = cache if cache is not None else MergeCache(budget_bytes)
        self.profile = WorkloadProfile()
        self.advisor = RollupAdvisor(self, top_k=advisor_top_k)
        self._lock = threading.Lock()
        self._materialized: dict[tuple, MaterializedRollup] = {}

    # ------------------------------------------------------------------
    # Epoch resolution
    # ------------------------------------------------------------------

    def token(self, backend) -> int:
        """Stable identity of the engine behind a (rebuildable) adapter."""
        return EPOCHS.token(backend.cache_target())

    def scan_epoch(self, backend, spec) -> tuple:
        """Flush-epoch vector of the engine state this scan reads.

        Backends that can narrow a scan (the cluster's per-shard
        routing) expose ``scan_epoch(spec)``; everything else is a
        single whole-engine counter.
        """
        narrow = getattr(backend, "scan_epoch", None)
        if narrow is not None:
            return narrow(spec)
        return (EPOCHS.epoch(backend.cache_target()),)

    # ------------------------------------------------------------------
    # Response tier
    # ------------------------------------------------------------------

    def cached_response(self, token: int, plan, solve_sig: tuple,
                        epoch: tuple):
        key = ("response", token) + plan.scan_key + (solve_sig,)
        value = self.cache.get(key, epoch, "response")
        if value is not None:
            # A response hit is still a request against the scan — the
            # advisor's hit-frequency ranking must see it.
            self.profile.observe(token, plan, source="response")
        return value

    def store_response(self, token: int, plan, solve_sig: tuple,
                       epoch: tuple, response) -> None:
        key = ("response", token) + plan.scan_key + (solve_sig,)
        self.cache.put(key, epoch, response,
                       nbytes=len(response.to_json()) + 256,
                       tier="response")

    # ------------------------------------------------------------------
    # Partial tier + materialized roll-ups
    # ------------------------------------------------------------------

    def lookup_scan(self, backend, token: int, plan, epoch: tuple):
        """``(result, source)`` for a scan: advisor pin, cached partial,
        or ``(None, "cold")`` telling the service to run the scan and
        hand the result back via :meth:`store_scan`."""
        with self._lock:
            rollup = self._materialized.get((token,) + plan.scan_key)
        if rollup is not None:
            fresh = rollup.epoch == epoch
            result = rollup.serve(backend, epoch)
            source = "advisor" if fresh else "refresh"
            self.profile.observe(token, plan, source=source,
                                 merge_seconds=result.merge_seconds,
                                 nbytes=rollup.size_bytes())
            return result, source
        key = ("partial", token) + plan.scan_key
        result = self.cache.get(key, epoch, "partial")
        if result is not None:
            self.profile.observe(token, plan, source="partial")
            return result, "partial"
        return None, "cold"

    def store_scan(self, token: int, plan, epoch: tuple, result) -> None:
        """Cache a cold scan's own merged output, verbatim."""
        nbytes = _scan_nbytes(result)
        self.profile.observe(token, plan, source="cold",
                             merge_seconds=result.merge_seconds,
                             nbytes=nbytes)
        key = ("partial", token) + plan.scan_key
        self.cache.put(key, epoch, result, nbytes=nbytes, tier="partial")

    # ------------------------------------------------------------------
    # Advisor pins
    # ------------------------------------------------------------------

    def pin(self, backend, spec, scan_key: tuple) -> MaterializedRollup:
        """Materialize one group scan (idempotent per scan signature).

        Refreshes eagerly so a non-moments group surface fails here,
        not on the first query that would have been served.
        """
        token = self.token(backend)
        key = (token,) + scan_key
        with self._lock:
            existing = self._materialized.get(key)
        if existing is not None:
            return existing
        rollup = MaterializedRollup(token, scan_key, spec)
        rollup.refresh(backend, self.scan_epoch(backend, spec))
        with self._lock:
            raced = self._materialized.setdefault(key, rollup)
        return raced

    def unpin_all(self) -> None:
        with self._lock:
            self._materialized.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """JSON-safe snapshot (harness records, ``repro optimizer stats``)."""
        with self._lock:
            rollups = list(self._materialized.values())
        return {"cache": self.cache.stats(),
                "profile": self.profile.summary(),
                "materialized": [rollup.describe() for rollup in rollups]}
