"""Profile a high-cardinality group-by with and without batched estimation.

Builds a Druid-style engine with a few thousand pre-aggregated cells,
then answers the same groupBy-p99 query twice: once with the default
batched estimation layer (one stacked max-entropy solve for every
group) and once with the scalar per-group path, printing the Eq. 2
phase decomposition for both.  This is the before/after picture of PR 5:
merge time is unchanged (both use the packed vectorized reductions),
while the solve phase — the dominant term at high cardinality — drops by
the batching factor.

Run with::

    PYTHONPATH=src python examples/batched_groupby.py
"""

import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.api import QueryService, QuerySpec, qkey  # noqa: E402
from repro.druid import DruidEngine, MomentsSketchAggregator  # noqa: E402

NUM_GROUPS = 600
ROWS_PER_GROUP = 120


def main() -> None:
    rng = np.random.default_rng(7)
    n = NUM_GROUPS * ROWS_PER_GROUP
    values = rng.lognormal(1.0, 1.0, n)
    service_ids = np.repeat(np.arange(NUM_GROUPS), ROWS_PER_GROUP)
    timestamps = rng.uniform(0.0, 4 * 3600.0, n)

    engine = DruidEngine(dimensions=("service",),
                         aggregators={"latency": MomentsSketchAggregator(k=10)},
                         granularity=3600.0)
    engine.ingest(timestamps, [service_ids], values)
    print(f"druid engine: {engine.num_cells} cells, {NUM_GROUPS} groups")

    spec = QuerySpec(kind="group_by", quantiles=(0.99,), measure="latency",
                     group_dimension="service")
    results = {}
    for label, batched in (("batched", True), ("scalar", False)):
        service = QueryService(druid=engine, batched=batched)
        service.execute(spec)  # warm caches so the comparison is fair
        start = time.perf_counter()
        response = service.execute(spec)
        wall = time.perf_counter() - start
        timings = response.timings
        results[label] = response
        print(f"{label:>8}: wall={wall:.3f}s merge={timings.merge_seconds:.3f}s "
              f"solve={timings.solve_seconds:.3f}s "
              f"(route={timings.solve_route}, solve_calls={timings.solve_calls})")

    key = qkey(0.99)
    drift = max(abs(results["batched"].groups[g][key]
                    - results["scalar"].groups[g][key])
                / abs(results["scalar"].groups[g][key])
                for g in results["scalar"].groups)
    print(f"max relative p99 difference between paths: {drift:.2e} "
          "(contract: <= 1e-6)")


if __name__ == "__main__":
    main()
