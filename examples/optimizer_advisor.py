"""Walk the multi-query optimizer loop on a dashboard-style workload.

Builds a cube of pre-aggregated cells, then replays a Zipf-skewed
query mix (the same few dashboard queries over and over, with ingest
flushes interleaved) through a `QueryService` carrying an
`Optimizer`.  Along the way it prints:

1. the cache tiers at work — a cold execution, a verbatim response
   hit, a partial hit that reuses the merge for different quantiles,
   and the invalidation a flush causes;
2. the workload profile the advisor accumulates, and its ranking of
   materialization candidates;
3. the effect of pinning the top roll-up: group queries served from a
   packed store, refreshed bit-exactly after the next flush.

Every served answer is checked against an uncached mirror service —
the optimizer's contract is speed without payload drift.

Run with::

    PYTHONPATH=src python examples/optimizer_advisor.py
"""

import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.api import QueryService, QuerySpec  # noqa: E402
from repro.datacube import CubeSchema, DataCube  # noqa: E402
from repro.ingest import IngestSession  # noqa: E402
from repro.optimizer import Optimizer  # noqa: E402
from repro.summaries.moments_summary import MomentsSummary  # noqa: E402

ROWS = 60_000
CELLS = 300
ZIPF_S = 1.3


def build_side(seed: int = 1):
    rng = np.random.default_rng(seed)
    cube = DataCube(CubeSchema(("cell",)), lambda: MomentsSummary(k=10))
    session = IngestSession(cube, auto_flush=False)
    session.append_columns(rng.lognormal(1.0, 1.2, ROWS),
                           dims=[rng.integers(0, CELLS, ROWS)])
    session.flush()
    return cube, session


def flush_batch(session: IngestSession, seed: int) -> None:
    rng = np.random.default_rng(seed)
    session.append_columns(rng.lognormal(1.0, 1.2, 500),
                           dims=[rng.integers(0, CELLS, 500)])
    session.flush()


def timed(service, spec):
    start = time.perf_counter()
    response = service.execute(spec)
    return response, (time.perf_counter() - start) * 1e3


def main() -> None:
    cube, session = build_side()
    mirror_cube, mirror_session = build_side()

    optimizer = Optimizer()
    service = QueryService(cube=cube, optimizer=optimizer)
    mirror = QueryService(cube=mirror_cube)

    dashboard = QuerySpec(kind="quantile", quantiles=(0.5, 0.95, 0.99),
                          report_moments=True)
    drilldown = QuerySpec(kind="quantile", quantiles=(0.9,),
                          report_moments=True)
    groups = QuerySpec(kind="group_by", quantiles=(0.99,),
                       group_dimension="cell")

    print("== cache tiers ==")
    cold, ms = timed(service, dashboard)
    print(f"cold roll-up:        {ms:7.2f} ms  route={cold.route}")
    hit, ms = timed(service, dashboard)
    print(f"response hit:        {ms:7.2f} ms  "
          f"solve_route={hit.timings.solve_route}")
    partial, ms = timed(service, drilldown)
    print(f"partial hit (p90):   {ms:7.2f} ms  shared_scan="
          f"{partial.shared_scan} merge_seconds="
          f"{partial.timings.merge_seconds}")
    assert hit.estimates == mirror.execute(dashboard).estimates
    assert partial.estimates == mirror.execute(drilldown).estimates

    flush_batch(session, seed=101)
    flush_batch(mirror_session, seed=101)
    fresh, ms = timed(service, dashboard)
    print(f"after flush (cold):  {ms:7.2f} ms  "
          f"solve_route={fresh.timings.solve_route or 'solved'}")
    assert fresh.estimates == mirror.execute(dashboard).estimates

    print("\n== skewed workload -> advisor ==")
    rng = np.random.default_rng(5)
    pool = [dashboard, groups, drilldown]
    weights = np.arange(1, len(pool) + 1, dtype=float) ** -ZIPF_S
    weights /= weights.sum()
    for index in range(60):
        service.execute(pool[int(rng.choice(len(pool), p=weights))])
        if index % 20 == 19:
            flush_batch(session, seed=200 + index)
            flush_batch(mirror_session, seed=200 + index)
    stats = optimizer.stats()
    print(f"profile: {stats['profile']}")
    print(f"cache:   hit_rate={stats['cache']['hit_rate']:.2f} "
          f"stale_drops={stats['cache']['stale_drops']}")
    for item in optimizer.advisor.rank():
        print(f"candidate: backend={item['backend']} kind={item['kind']} "
              f"requests={item['requests']} "
              f"avg_merge={item['avg_merge_seconds'] * 1e3:.2f} ms "
              f"score={item['score']:.3g}")

    print("\n== materialize the winner ==")
    for pin in optimizer.advisor.materialize(service):
        print(f"pinned: groups={pin['groups']} bytes={pin['bytes']} "
              f"refreshes={pin['refreshes']}")
    served, ms = timed(service, groups)
    print(f"served from packed store: {ms:7.2f} ms  "
          f"merge_seconds={served.timings.merge_seconds}")
    assert served.groups == mirror.execute(groups).groups

    flush_batch(session, seed=999)
    flush_batch(mirror_session, seed=999)
    refreshed, ms = timed(service, groups)
    print(f"after flush (refresh):    {ms:7.2f} ms")
    assert refreshed.groups == mirror.execute(groups).groups
    print(f"materialized: {optimizer.stats()['materialized']}")
    print("\nall served payloads matched the uncached mirror bit for bit")


if __name__ == "__main__":
    main()
