"""Quickstart: build, merge, and query moments sketches.

Walks the core API end to end:

1. build sketches over shards of a dataset (the pre-aggregation step),
2. merge them (the cheap operation the sketch is designed around),
3. estimate quantiles via the maximum-entropy solver,
4. certify worst-case error with the moment bounds,
5. answer a threshold predicate through the cascade.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import MomentsSketch, QuantileEstimator, merge_all
from repro.core.bounds import quantile_error_bound, rtt_bound
from repro.core.cascade import ThresholdCascade


def main() -> None:
    rng = np.random.default_rng(42)
    # A long-tailed latency-like dataset: mostly fast requests, heavy tail.
    latencies = rng.lognormal(mean=3.0, sigma=1.0, size=500_000)

    # 1. Pre-aggregate: one sketch per shard (e.g. per server, per hour).
    #    Each sketch is ~192 bytes regardless of how much data it saw.
    shards = np.array_split(latencies, 250)
    sketches = [MomentsSketch.from_data(shard, k=10) for shard in shards]
    print(f"built {len(sketches)} sketches, "
          f"{sketches[0].size_bytes()} bytes each")

    # 2. Merge: pure vector addition plus min/max comparisons.
    merged = merge_all(sketches)
    print(f"merged sketch covers n={merged.count:.0f} values, "
          f"range [{merged.min:.2f}, {merged.max:.2f}]")

    # 3. Estimate quantiles: solve the max-entropy problem once, then
    #    evaluate any number of quantiles from the solved model.
    estimator = QuantileEstimator.fit(merged)
    for phi in (0.5, 0.9, 0.99):
        estimate = estimator.quantile(phi)
        exact = np.quantile(latencies, phi)
        print(f"  p{phi * 100:>4.1f}: estimate {estimate:10.2f}   "
              f"exact {exact:10.2f}")

    # 4. Certified worst-case error for the p99 estimate: no dataset
    #    matching these moments can be further away than this.
    p99 = estimator.quantile(0.99)
    certified = quantile_error_bound(merged, p99, 0.99)
    bounds = rtt_bound(merged, p99)
    print(f"p99 rank bounds: [{bounds.lower:.0f}, {bounds.upper:.0f}] "
          f"of {merged.count:.0f} (certified error <= {certified:.3f})")

    # 5. Threshold predicate without a full estimate: "is p99 > 1000?"
    cascade = ThresholdCascade()
    outcome = cascade.evaluate(merged, 1000.0, 0.99)
    print(f"p99 > 1000?  {outcome.result}  (decided by the "
          f"'{outcome.stage}' cascade stage)")


if __name__ == "__main__":
    main()
