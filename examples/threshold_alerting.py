"""MacroBase-style threshold search with the cascade (Section 7.2.1).

Finds dimension values whose outlier rate is far above the population's —
the "which app version / hardware combination is misbehaving?" query — by
running the threshold cascade over every subgroup's moments sketch instead
of solving the max-entropy problem thousands of times.

Run:  python examples/threshold_alerting.py
"""

import time

import numpy as np

from repro.core.cascade import STAGES
from repro.macrobase import MacroBaseEngine, MomentsCube, merge12a_query


def simulate_fleet(n: int, seed: int = 0):
    """App telemetry with one anomalous (version, region) population."""
    rng = np.random.default_rng(seed)
    version = rng.choice(["v7.0", "v7.1", "v8.0"], n, p=[0.55, 0.43, 0.02])
    region = rng.choice(["na", "eu", "apac"], n)
    hardware = rng.integers(0, 12, n)
    latency = rng.lognormal(2.5, 0.8, n)
    # v8.0 is a canary rollout with a serious regression.
    bad = version == "v8.0"
    latency[bad] = rng.lognormal(5.5, 0.8, int(bad.sum()))
    return [version, region, hardware], latency


def main() -> None:
    dims, latency = simulate_fleet(600_000)
    cube = MomentsCube.build(dims, latency, k=10)
    print(f"cube: {cube.num_cells} cells over "
          f"{int(sum(s.count for s in cube.cells.values()))} rows")

    # The query: subpopulations whose outlier rate (values above the global
    # p99) is at least 30x the overall 1% rate, i.e. whose p70 exceeds the
    # global p99.
    engine = MacroBaseEngine(cube)
    start = time.perf_counter()
    report = engine.find_outlier_groups(outlier_phi=0.99, rate_multiplier=30.0)
    elapsed = time.perf_counter() - start

    print(f"\nglobal p99 threshold: {report.threshold:.1f}")
    print(f"checked {report.candidates_checked} subgroups in {elapsed:.2f}s "
          f"(merge {report.merge_seconds:.2f}s, "
          f"estimation {report.estimation_seconds:.3f}s)")
    dimension_names = ["version", "region", "hardware"]
    for group in report.groups:
        print(f"  ALERT {dimension_names[group.dimension]} = {group.value!r} "
              f"(resolved by '{group.stage}' stage)")

    print("\ncascade anatomy (Figure 13's view):")
    stats = report.cascade_stats
    for stage in STAGES:
        print(f"  {stage:>7}: entered {stats.fraction_entered(stage) * 100:5.1f}% "
              f"of queries, throughput {stats.stage_throughput(stage):12.0f} q/s")

    # For comparison: the same query over Merge12 sketches merged at query
    # time (the paper's Merge12a baseline).
    start = time.perf_counter()
    baseline = merge12a_query(dims, latency)
    print(f"\nMerge12 baseline: {time.perf_counter() - start:.2f}s, "
          f"{len(baseline.groups)} groups")


if __name__ == "__main__":
    main()
