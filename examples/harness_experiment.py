"""A full workload-harness experiment: 10 paced seconds, cube vs cluster.

Replays a mixed production-shaped workload — Zipf-skewed point
quantiles, full group-bys, top-5, threshold counts, plus streaming
ingest batches — against a single-process data cube and a 3-node
scatter-gather cluster simultaneously, with the sqlite exact oracle
grading every quantile-bearing answer by the paper's Eq. 1 rank error.
Prints the per-backend latency and accuracy tables and appends the
schema-versioned record to ``BENCH_harness.json``.

BENCH_harness.json record (schema ``repro.harness/1``; full schema in
:mod:`repro.harness.report`)::

    {"schema": "repro.harness/1",
     "run_at":   ISO-8601 UTC,
     "spec":     the ExperimentSpec that produced the run,
     "workload": events / queries / ingest_flushes / rows_ingested /
                 elapsed_seconds / qps_target / qps_achieved,
     "latency":  {backend: {kind: count, mean/max/p50/p95/p99 seconds,
                            "phase_totals": planner/merge/solve seconds
                            + solve_calls},
                  ...},
     "resources": cpu_percent mean/max + rss bytes, sampled in-process,
     "accuracy": {"epsilon": eps,
                  backend: checked / mean + max rank error / violations
                           / threshold disagreements / 10 worst queries},
     "agreement": {backend: queries / exact_matches vs the reference}}

Run with::

    PYTHONPATH=src python examples/harness_experiment.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.harness import ExperimentSpec, run_experiment  # noqa: E402

SPEC = ExperimentSpec(
    name="example-cube-vs-cluster",
    dataset="milan",
    rows=20_000,
    cells=32,
    backends=("cube", "cluster"),
    k=10,
    duration_seconds=10.0,
    target_qps=30.0,
    query_mix=(("quantile", 0.5), ("group_by", 0.2),
               ("top_n", 0.2), ("threshold_count", 0.1)),
    ingest_fraction=0.15,
    ingest_batch_rows=1_000,
    zipf_s=1.1,
    burstiness=0.3,
    quantiles=(0.5, 0.95, 0.99),
    top_n=5,
    threshold_q=0.9,
    epsilon=0.05,
    oracle=True,
    paced=True,  # honor the 10-second open-loop schedule in real time
    seed=42,
    nodes=3,
)


def main() -> None:
    print(f"running {SPEC.name!r}: {SPEC.num_events} events over "
          f"{SPEC.duration_seconds:.0f}s at {SPEC.target_qps:.0f} qps, "
          f"backends {', '.join(SPEC.backends)} ...")
    record = run_experiment(SPEC, trajectory_path="BENCH_harness.json",
                            fail_on_violation=True)

    workload = record["workload"]
    print(f"\n{workload['queries']} queries + "
          f"{workload['ingest_flushes']} ingest flushes "
          f"({workload['rows_ingested']} rows) in "
          f"{workload['elapsed_seconds']:.2f}s "
          f"({workload['qps_achieved']:.1f} events/s achieved, "
          f"{workload['qps_target']:.0f} scheduled)")
    resources = record["resources"]
    print(f"cpu mean {resources['cpu_percent_mean']:.0f}%  "
          f"rss max {resources['rss_max_bytes'] / 1e6:.0f} MB")

    print("\nlatency (ms)")
    print(f"{'backend':>9} {'kind':>16} {'count':>6} "
          f"{'p50':>8} {'p95':>8} {'p99':>8}")
    for backend, kinds in record["latency"].items():
        for kind, stats in sorted(kinds.items()):
            if kind == "phase_totals":
                continue
            print(f"{backend:>9} {kind:>16} {stats['count']:>6} "
                  f"{stats['p50_seconds'] * 1e3:>8.2f} "
                  f"{stats['p95_seconds'] * 1e3:>8.2f} "
                  f"{stats['p99_seconds'] * 1e3:>8.2f}")

    accuracy = record["accuracy"]
    print(f"\naccuracy vs sqlite exact oracle (epsilon = "
          f"{accuracy['epsilon']})")
    print(f"{'backend':>9} {'checked':>8} {'mean err':>9} {'max err':>9} "
          f"{'violations':>10}")
    for backend in SPEC.backends:
        graded = accuracy[backend]
        print(f"{backend:>9} {graded['checked']:>8} "
              f"{graded['mean_rank_error']:>9.4f} "
              f"{graded['max_rank_error']:>9.4f} "
              f"{graded['violations']:>10}")

    agreement = record["agreement"]["cluster"]
    print(f"\ncube vs cluster agreement: {agreement['exact_matches']}/"
          f"{agreement['queries']} payloads bit-identical")
    print("record appended to BENCH_harness.json")


if __name__ == "__main__":
    main()
