"""Cluster serving: ingest, scale out, kill a node, identical quantiles.

Walks the full lifecycle of the simulated scatter-gather cluster
(:mod:`repro.cluster`):

1. build a 3-node cluster (16 shards, replication 2) and ingest
   synthetic latency telemetry through the Druid-style roll-up path;
2. answer one declarative :class:`~repro.api.QuerySpec` through the
   scatter-gather broker and compare it bit-for-bit against a
   single-process engine on the same rows;
3. scale out to a 4th node — the consistent-hash ring moves ~K/N
   shards, a few hundred bytes each — and show the answers unchanged;
4. kill a node; surviving replicas re-replicate its shards and the
   answers are *still* bit-identical, because every replica folds the
   same per-shard partials.

Run with::

    PYTHONPATH=src python examples/cluster_quantiles.py
"""

import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.api import QueryService, QuerySpec, as_backend, qkey  # noqa: E402
from repro.cluster import ClusterCoordinator, timings_breakdown  # noqa: E402
from repro.druid import DruidEngine, MomentsSketchAggregator  # noqa: E402


def main() -> int:
    rng = np.random.default_rng(0)
    n = 200_000
    latency_ms = rng.lognormal(3.0, 0.8, n)
    endpoint = np.array(["GET /search", "GET /item", "POST /checkout",
                         "GET /home"])[rng.integers(0, 4, n)]

    # ------------------------------------------------------------------
    # 1. Ingest into a 3-node cluster.
    # ------------------------------------------------------------------
    cluster = ClusterCoordinator(
        dimensions=("endpoint",),
        aggregators={"latency": MomentsSketchAggregator(k=10)},
        num_shards=16, replication=2, granularity=1.0,
        nodes=["node-0", "node-1", "node-2"])
    # Shard-aligned time chunks make the single-process comparison below
    # bit-exact (same partial fold order); any timestamps work otherwise.
    timestamps = cluster.shard_ids([endpoint]).astype(float)
    cluster.ingest(timestamps, [endpoint], latency_ms)
    print(f"ingested {n} rows into {len(cluster.live_nodes)} nodes, "
          f"{cluster.num_shards} shards, replication {cluster.replication}")

    # ------------------------------------------------------------------
    # 2. One spec, scatter-gather vs single process.
    # ------------------------------------------------------------------
    backend = as_backend(cluster)
    single = DruidEngine(dimensions=("endpoint",),
                         aggregators={"latency": MomentsSketchAggregator()},
                         granularity=1.0, processing_threads=1)
    single.ingest(timestamps, [endpoint], latency_ms)
    service = QueryService(cluster=backend, druid=single)

    spec = QuerySpec(kind="quantile", quantiles=(0.5, 0.99),
                     report_moments=True)
    scattered = service.execute(spec, backend="cluster")
    local = service.execute(spec, backend="druid")
    print("\np50 / p99 over all endpoints:",
          {key: round(value, 3) for key, value in scattered.estimates.items()})
    print("bit-exact vs single process:",
          scattered.moments == local.moments
          and scattered.estimates == local.estimates)
    print("phase timings:",
          {key: f"{value * 1e3:.2f}ms" for key, value in
           timings_breakdown(backend,
                             scattered.timings.solve_seconds).items()})

    per_endpoint = service.execute(
        QuerySpec(kind="group_by", quantiles=(0.99,),
                  group_dimension="endpoint"), backend="cluster")
    print("p99 by endpoint:",
          {str(group): round(values[qkey(0.99)], 1)
           for group, values in sorted(per_endpoint.groups.items())})

    # ------------------------------------------------------------------
    # 3. Scale out: add a node, shards rebalance, answers unchanged.
    # ------------------------------------------------------------------
    cluster.add_node("node-3")
    moved = cluster.last_rebalance
    grown = service.execute(spec, backend="cluster")
    print(f"\nscale-out to 4 nodes: moved {moved.copied_shards} shard "
          f"copies ({moved.bytes_copied} bytes)")
    print("answers unchanged after scale-out:",
          grown.moments == scattered.moments
          and grown.estimates == scattered.estimates)

    # ------------------------------------------------------------------
    # 4. Kill a node: replicas repair, answers still bit-identical.
    # ------------------------------------------------------------------
    cluster.fail_node("node-1", repair=True)
    repaired = cluster.last_rebalance
    after = service.execute(spec, backend="cluster")
    print(f"\nkilled node-1; re-replicated {repaired.copied_shards} shards "
          f"({repaired.bytes_copied} bytes) onto survivors")
    print("live nodes:", list(cluster.live_nodes))
    print("answers unchanged after failover:",
          after.moments == scattered.moments
          and after.estimates == scattered.estimates)
    every_shard_replicated = all(
        len(cluster.live_owners(shard)) == cluster.replication
        for shard in range(cluster.num_shards))
    print("every shard back at full replication:", every_shard_replicated)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
