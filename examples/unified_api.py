"""Unified query API: one QuerySpec, three backends, identical answers.

Builds the same synthetic telemetry three ways — a pre-aggregated data
cube, a Druid-style engine, and a raw packed sketch store — then runs a
single declarative :class:`~repro.api.QuerySpec` against each through
one :class:`~repro.api.QueryService`, printing the uniform
:class:`~repro.api.QueryResponse` JSON.  Finishes with a batched run
demonstrating scan sharing: many specs over the same filter cost one
packed merge.

Run with::

    PYTHONPATH=src python examples/unified_api.py
"""

import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.api import QueryService, QuerySpec  # noqa: E402
from repro.datacube import CubeSchema, DataCube  # noqa: E402
from repro.druid import DruidEngine, MomentsSketchAggregator  # noqa: E402
from repro.summaries.moments_summary import MomentsSummary  # noqa: E402
from repro.workload import build_packed_cells  # noqa: E402


def main() -> int:
    rng = np.random.default_rng(0)
    n = 100_000
    latency_ms = rng.lognormal(3.0, 0.8, n)
    service_col = rng.choice(["api", "web", "batch"], n)
    region = rng.choice(["us-east", "eu-west"], n)

    # Backend 1: data cube keyed by (service, region).
    cube = DataCube(CubeSchema(("service", "region")),
                    lambda: MomentsSummary(k=10))
    cube.ingest([service_col, region], latency_ms)

    # Backend 2: Druid-style engine with hourly roll-up.
    engine = DruidEngine(dimensions=("service", "region"),
                         aggregators={"latency": MomentsSketchAggregator(k=10)},
                         granularity=3600.0)
    timestamps = rng.uniform(0, 6 * 3600, n)
    engine.ingest(timestamps, [service_col, region], latency_ms)

    # Backend 3: a bare packed store of 200-row cells (no dimensions).
    packed = build_packed_cells(latency_ms, cell_size=200, k=10)

    service = QueryService(cube=cube, druid=engine, packed=packed.store)

    # One declarative spec; the bare packed store has no dimensions, so
    # it gets the unfiltered variant.
    print("== one spec, three backends ==")
    for name in service.backends:
        spec = QuerySpec(kind="quantile", quantiles=(0.5, 0.99),
                         report_bounds=True,
                         filters={} if name == "packed"
                         else {"service": "api"})
        response = service.execute(spec, backend=name)
        print(f"-- backend={name}")
        print(response.to_json(indent=2))

    # Batched execution: four specs over one filter set share one merge.
    print("\n== execute_batch: scan sharing ==")
    specs = [QuerySpec(kind="quantile", quantiles=(q,),
                       filters={"service": "web"})
             for q in (0.5, 0.9, 0.95, 0.99)]
    responses = service.execute_batch([s.with_backend("cube") for s in specs])
    for spec, response in zip(specs, responses):
        print(f"q={spec.q:<5} -> {response.value:9.3f} ms  "
              f"shared_scan={response.shared_scan}")
    print("batch report:", service.last_batch_report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
