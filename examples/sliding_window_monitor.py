"""Sliding-window tail-latency monitoring (Section 7.2.2).

A stream is pre-aggregated into ten-minute panes; an operator wants every
four-hour window whose p99 crossed an alert threshold.  Because moments
sketches subtract exactly, the window slides in O(1) sketch work per pane
(turnstile semantics), and the cascade screens most windows without a
max-entropy solve.

Run:  python examples/sliding_window_monitor.py
"""

import time

import numpy as np

from repro.summaries import Merge12Summary
from repro.window import (
    TurnstileWindowProcessor,
    build_panes,
    inject_spikes,
    remerge_windows,
)

PANE_SIZE = 600          # "ten minutes" of events
WINDOW_PANES = 24        # four-hour windows
THRESHOLD = 1500.0
PHI = 0.99


def main() -> None:
    rng = np.random.default_rng(7)
    # A month-like stream of request latencies, p99 ~ 500.
    stream = rng.lognormal(3.0, 1.28, 1_000_000)
    num_panes = stream.size // PANE_SIZE

    # Two incidents: a hard spike at 2000 and a milder one at 1800.
    incident_a = list(range(num_panes // 3, num_panes // 3 + 12))
    incident_b = list(range(2 * num_panes // 3, 2 * num_panes // 3 + 12))
    stream = inject_spikes(stream, PANE_SIZE, incident_a, spike_value=2000.0)
    stream = inject_spikes(stream, PANE_SIZE, incident_b, spike_value=1800.0,
                           seed=1)

    panes = build_panes(stream, PANE_SIZE, k=10)
    print(f"{len(panes)} panes of {PANE_SIZE} events "
          f"({panes[0].sketch.size_bytes()} bytes per pane sketch)")

    processor = TurnstileWindowProcessor(panes, window_panes=WINDOW_PANES)
    start = time.perf_counter()
    result = processor.query(threshold=THRESHOLD, q=PHI)
    turnstile_seconds = time.perf_counter() - start

    print(f"\nturnstile scan: {result.windows_checked} windows in "
          f"{turnstile_seconds:.2f}s "
          f"(merge {result.merge_seconds:.3f}s, "
          f"estimation {result.estimation_seconds:.3f}s)")
    for alert in result.alerts[:5]:
        print(f"  p99 > {THRESHOLD:.0f} in panes "
              f"[{alert.start_pane}, {alert.end_pane}] "
              f"(stage: {alert.stage})")
    if len(result.alerts) > 5:
        print(f"  ... and {len(result.alerts) - 5} more windows")

    # Baseline: a non-subtractable summary must re-merge all 24 panes per
    # window position.
    pane_summaries = [
        Merge12Summary.from_data(stream[i * PANE_SIZE:(i + 1) * PANE_SIZE],
                                 k=32, seed=0)
        for i in range(num_panes)]
    start = time.perf_counter()
    baseline = remerge_windows(pane_summaries, WINDOW_PANES, THRESHOLD, PHI)
    remerge_seconds = time.perf_counter() - start
    print(f"\nMerge12 re-merge baseline: {remerge_seconds:.2f}s "
          f"({len(baseline.alerts)} alert windows)")
    print(f"turnstile speedup: {remerge_seconds / turnstile_seconds:.1f}x")


if __name__ == "__main__":
    main()
