"""Unified ingestion API: one session feeding cube, Druid, and cluster.

Opens a single fan-out :class:`~repro.ingest.IngestSession` over three
write backends — a pre-aggregated data cube, a Druid-style engine, and
a replicated scatter-gather cluster — streams the same synthetic
telemetry through micro-batched columnar flushes, prints the per-flush
:class:`~repro.ingest.IngestReport` objects, then closes the loop by
running one declarative :class:`~repro.api.QuerySpec` against every
freshly written backend.  Finishes by replaying a sequence-stamped
batch at the cluster to show idempotent, replica-safe delivery.

Run with::

    PYTHONPATH=src python examples/unified_ingest.py
"""

import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.api import QuerySpec  # noqa: E402
from repro.cluster import ClusterCoordinator  # noqa: E402
from repro.datacube import CubeSchema, DataCube  # noqa: E402
from repro.druid import DruidEngine, MomentsSketchAggregator  # noqa: E402
from repro.ingest import (IngestSession, as_write_backend,  # noqa: E402
                          make_batch)
from repro.summaries.moments_summary import MomentsSummary  # noqa: E402


def main() -> int:
    rng = np.random.default_rng(0)
    n = 120_000
    latency_ms = rng.lognormal(3.0, 0.8, n)
    service_col = rng.choice(["api", "web", "batch"], n)

    # Three write targets, one row stream.
    cube = DataCube(CubeSchema(("service",)), lambda: MomentsSummary(k=10))
    engine = DruidEngine(dimensions=("service",),
                         aggregators={"latency": MomentsSketchAggregator(k=10)},
                         granularity=3600.0)
    cluster = ClusterCoordinator(
        dimensions=("service",),
        aggregators={"latency": MomentsSketchAggregator(k=10)},
        num_shards=16, replication=2, granularity=3600.0,
        nodes=["node-0", "node-1", "node-2"])
    timestamps = rng.uniform(0, 6 * 3600, n)

    print("== one fan-out session, micro-batched columnar flushes ==")
    with IngestSession([cube, engine, cluster], flush_rows=40_000,
                       dedup_key="telemetry-0") as session:
        for lo in range(0, n, 10_000):
            hi = lo + 10_000
            session.append_columns(latency_ms[lo:hi],
                                   dims=[service_col[lo:hi]],
                                   timestamps=timestamps[lo:hi])
    for report in session.reports:
        print(f"flush {report.flush_index}: {report.rows} rows -> "
              f"{report.cells} cells [{report.trigger}] "
              f"route={report.route_seconds * 1e3:.2f}ms "
              f"pack={report.pack_seconds * 1e3:.2f}ms "
              f"seq={report.sequence}")

    print("\n== immediately queryable: one spec, three backends ==")
    service = session.query_service()
    spec = QuerySpec(kind="quantile", quantiles=(0.5, 0.99),
                     filters={"service": "api"})
    for name in service.backends:
        response = service.execute(spec, backend=name)
        print(f"{name:>8}: p50={response.estimates['0.5']:8.3f} ms  "
              f"p99={response.estimates['0.99']:8.3f} ms  "
              f"cells={response.cells_scanned}")

    print("\n== idempotent replay at the cluster ==")
    backend = as_write_backend(cluster)
    batch = make_batch(latency_ms[:10_000], dims=[service_col[:10_000]],
                       timestamps=timestamps[:10_000],
                       sequence=("telemetry-0", 0))
    outcome = backend.write(batch)
    before = service.execute(spec, backend="cluster")
    print(f"replayed flush 0: applied on {outcome.replicas} replicas "
          f"(already ingested -> no-op)")
    after = service.execute(spec, backend="cluster")
    print(f"answers unchanged: {after.estimates == before.estimates}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
