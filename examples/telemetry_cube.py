"""Telemetry monitoring on a Druid-like engine (the Section 1 scenario).

Simulates the paper's motivating deployment: devices streaming latency
telemetry tagged with country, app version, and OS; an ingestion layer
rolling rows up into a time x dimensions cube of moments sketches; and an
analyst issuing percentile aggregations across slices ("p99 latency for
version v8 in the US over the last day"), each answered by merging
thousands of pre-aggregated cells.

Run:  python examples/telemetry_cube.py
"""

import time

import numpy as np

from repro.druid import DruidEngine, registry


def simulate_telemetry(n: int, seed: int = 0):
    """Latency rows with realistic structure: versions differ in speed."""
    rng = np.random.default_rng(seed)
    timestamps = rng.uniform(0, 3 * 24 * 3600, n)          # three days
    country = rng.choice(["US", "CA", "MX"], n, p=[0.6, 0.25, 0.15])
    version = rng.choice(["v7", "v8"], n, p=[0.7, 0.3])
    os_name = rng.choice(["ios16", "ios17", "android14"], n)
    base = rng.lognormal(3.0, 0.9, n)
    # v8 regressed tail latency on one OS: the needle to find.
    slow = (version == "v8") & (os_name == "ios17")
    base[slow] *= 6.0
    return timestamps, [country, version, os_name], base


def main() -> None:
    n = 400_000
    timestamps, dims, latencies = simulate_telemetry(n)

    engine = DruidEngine(
        dimensions=("country", "version", "os"),
        aggregators=registry(moment_orders=(10,), histogram_bins=(100,)),
        granularity=3600.0,          # hourly segments
        processing_threads=2,
    )
    start = time.perf_counter()
    engine.ingest(timestamps, dims, latencies)
    print(f"ingested {n} rows into {engine.num_cells} cube cells "
          f"in {time.perf_counter() - start:.2f}s")

    # Global p99 across every cell.
    result = engine.query("momentsSketch@10", q=0.99)
    print(f"\nglobal p99: {result.value:.1f}  "
          f"({result.cells_scanned} cells merged in "
          f"{result.merge_seconds * 1e3:.1f} ms, estimate in "
          f"{result.finalize_seconds * 1e3:.1f} ms)")

    # Drill-down: p99 per app version (a groupBy over merged sketches).
    print("\np99 by version:")
    for version, value in sorted(engine.group_by(
            "momentsSketch@10", "version", q=0.99).items()):
        print(f"  {version}: {value:10.1f}")

    # Slice: where did v8 regress?  p99 by OS, filtered to v8.
    print("\np99 by OS for version v8:")
    for os_name, value in sorted(engine.group_by(
            "momentsSketch@10", "os", q=0.99,
            filters={"version": "v8"}).items()):
        marker = "  <-- regression" if value > 500 else ""
        print(f"  {os_name}: {value:10.1f}{marker}")

    # Time-windowed query: last 24 hours only.
    last_day = engine.query("momentsSketch@10", q=0.99,
                            interval=(2 * 24 * 3600.0, 3 * 24 * 3600.0))
    print(f"\np99 over the last day: {last_day.value:.1f} "
          f"({last_day.cells_scanned} cells)")


if __name__ == "__main__":
    main()
