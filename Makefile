# Test and benchmark entry points.  `make test` is the CI gate: byte
# compilation, tier-1 tests, plus smoke runs of the packed-merge,
# batched-query, cluster-scaling, and ingestion benchmarks, which fail
# on any packed-vs-loop divergence, broken scan sharing, cluster answers
# that are not bit-exact across topologies and failovers, non-idempotent
# batch replay, or a columnar ingest speedup below 5x.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-merge bench-batch bench-cluster bench-ingest bench

test:
	$(PYTHON) -m compileall -q src
	$(PYTHON) -m pytest -x -q
	$(PYTHON) benchmarks/bench_batch_merge.py --quick
	$(PYTHON) benchmarks/bench_execute_batch.py --quick
	$(PYTHON) benchmarks/bench_cluster_scaling.py --quick
	$(PYTHON) benchmarks/bench_ingest.py --quick

bench-merge:
	$(PYTHON) benchmarks/bench_batch_merge.py --require-speedup 10

bench-batch:
	$(PYTHON) benchmarks/bench_execute_batch.py

bench-cluster:
	$(PYTHON) benchmarks/bench_cluster_scaling.py --require-scaling

bench-ingest:
	$(PYTHON) benchmarks/bench_ingest.py --require-speedup 5

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q
