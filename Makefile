# Test and benchmark entry points.  `make test` is the CI gate: tier-1
# tests plus a smoke run of the packed-merge benchmark, which fails on
# any packed-vs-loop divergence.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-merge bench

test:
	$(PYTHON) -m pytest -x -q
	$(PYTHON) benchmarks/bench_batch_merge.py --quick

bench-merge:
	$(PYTHON) benchmarks/bench_batch_merge.py --require-speedup 10

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q
