# Test and benchmark entry points.  `make test` is the CI gate: byte
# compilation, tier-1 tests, plus smoke runs of the packed-merge,
# batched-query, cluster-scaling, ingestion, batched-group-solve, and
# tiered-storage benchmarks, which fail on any packed-vs-loop
# divergence, broken scan sharing, cluster answers that are not
# bit-exact across topologies and failovers, non-idempotent batch
# replay, a columnar ingest speedup below 5x, a batched group solve
# below 3x at 1024 cells (or with decisions that diverge from the
# scalar path), a tiered store whose compaction is not bit-exact /
# whose cold tier misses the 4x disk reduction or the cold-latency
# ceiling, a telemetry overhead gate (disabled-mode guard cost <= 3%,
# enabled-mode tracing + metrics <= 10% of query latency), a
# multi-query-optimizer gate (>=3x on a Zipf-skewed repeated workload
# with interleaved flushes, payloads bit-identical to cold execution),
# and a workload-harness smoke (cube + cluster, sqlite exact oracle,
# optimizer enabled) that fails on any Eq. 1 rank-error contract
# violation.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint bench-merge bench-batch bench-cluster bench-ingest \
	bench-solve bench-tiered bench-telemetry bench-optimizer \
	bench-harness bench

# Static analysis gate: the repo-invariant analyzers (lock discipline,
# determinism, telemetry guards, API hygiene) against the committed
# baseline, plus mypy when available (the CI lint job installs it; the
# guard keeps `make lint` usable in minimal environments).
lint:
	$(PYTHON) -m repro.cli analysis lint src examples \
		--baseline .analysis-baseline.json
	@if $(PYTHON) -c "import mypy" >/dev/null 2>&1; then \
		$(PYTHON) -m mypy --config-file mypy.ini; \
	else \
		echo "mypy not installed; skipping type check"; \
	fi

test:
	$(PYTHON) -m compileall -q src
	$(PYTHON) -m pytest -x -q
	$(PYTHON) benchmarks/bench_batch_merge.py --quick
	$(PYTHON) benchmarks/bench_execute_batch.py --quick
	$(PYTHON) benchmarks/bench_cluster_scaling.py --quick
	$(PYTHON) benchmarks/bench_ingest.py --quick
	$(PYTHON) benchmarks/bench_group_solve.py --quick
	$(PYTHON) benchmarks/bench_tiered.py --quick
	$(PYTHON) benchmarks/bench_telemetry.py --quick
	$(PYTHON) benchmarks/bench_optimizer.py --quick
	$(PYTHON) -m repro.cli harness run --spec examples/harness_smoke.json \
		--out BENCH_harness.json --check

bench-merge:
	$(PYTHON) benchmarks/bench_batch_merge.py --require-speedup 10

bench-batch:
	$(PYTHON) benchmarks/bench_execute_batch.py

bench-cluster:
	$(PYTHON) benchmarks/bench_cluster_scaling.py --require-scaling

bench-ingest:
	$(PYTHON) benchmarks/bench_ingest.py --require-speedup 5

bench-solve:
	$(PYTHON) benchmarks/bench_group_solve.py --require-speedup 3

bench-tiered:
	$(PYTHON) benchmarks/bench_tiered.py

bench-telemetry:
	$(PYTHON) benchmarks/bench_telemetry.py

bench-optimizer:
	$(PYTHON) benchmarks/bench_optimizer.py --advice-out advisor.json

# Full workload-harness experiment (longer than the smoke in `test`):
# the paced 10-second mixed cube-vs-cluster run from the examples.
bench-harness:
	$(PYTHON) examples/harness_experiment.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q
