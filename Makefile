# Test and benchmark entry points.  `make test` is the CI gate: byte
# compilation, tier-1 tests, plus smoke runs of the packed-merge and
# batched-query benchmarks, which fail on any packed-vs-loop divergence
# or broken scan sharing.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-merge bench-batch bench

test:
	$(PYTHON) -m compileall -q src
	$(PYTHON) -m pytest -x -q
	$(PYTHON) benchmarks/bench_batch_merge.py --quick
	$(PYTHON) benchmarks/bench_execute_batch.py --quick

bench-merge:
	$(PYTHON) benchmarks/bench_batch_merge.py --require-speedup 10

bench-batch:
	$(PYTHON) benchmarks/bench_execute_batch.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q
