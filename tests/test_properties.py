"""Property-based tests (hypothesis) for core invariants.

These encode the paper's structural guarantees:
* merging is commutative/associative and equals pointwise accumulation
  (mergeability, Section 3.2);
* moment bounds contain the truth for *any* dataset (Section 5.1);
* the cascade agrees with the direct estimate for any threshold
  (Section 5.2);
* serialization and low-precision encoding round-trip;
* Chebyshev identities hold for arbitrary coefficient vectors.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core import MomentsSketch, merge_all
from repro.core.bounds import markov_bound, rtt_bound
from repro.core.cascade import ThresholdCascade
from repro.core.chebyshev import (
    antiderivative_series,
    eval_chebyshev,
    eval_chebyshev_series,
    integrate_series,
    multiply_series,
)
from repro.core.encoding import LowPrecisionCodec
from repro.summaries import EquiWidthHistogramSummary
from repro.summaries.base import weighted_quantile

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)
positive_floats = st.floats(min_value=1e-3, max_value=1e6,
                            allow_nan=False, allow_infinity=False)
datasets = st.lists(finite_floats, min_size=1, max_size=200)
positive_datasets = st.lists(positive_floats, min_size=1, max_size=200)


class TestSketchMergeProperties:
    @given(datasets, datasets)
    @settings(max_examples=50, deadline=None)
    def test_merge_commutative(self, a, b):
        left = MomentsSketch.from_data(a, k=6).merge(MomentsSketch.from_data(b, k=6))
        right = MomentsSketch.from_data(b, k=6).merge(MomentsSketch.from_data(a, k=6))
        assert left.count == right.count
        assert left.min == right.min and left.max == right.max
        np.testing.assert_allclose(left.power_sums, right.power_sums,
                                   rtol=1e-9, atol=1e-9)

    @given(datasets, datasets, datasets)
    @settings(max_examples=50, deadline=None)
    def test_merge_associative(self, a, b, c):
        sk = lambda d: MomentsSketch.from_data(d, k=5)
        left = sk(a).merge(sk(b)).merge(sk(c))
        right = sk(a).merge(sk(b).merge(sk(c)))
        np.testing.assert_allclose(left.power_sums, right.power_sums,
                                   rtol=1e-9, atol=1e-9)
        assert left.min == right.min and left.max == right.max

    @given(datasets, st.integers(min_value=1, max_value=5))
    @settings(max_examples=50, deadline=None)
    def test_merge_equals_accumulate(self, data, pieces):
        """The no-accuracy-cost-to-pre-aggregation property (Section 4.1)."""
        data = np.asarray(data)
        whole = MomentsSketch.from_data(data, k=6)
        chunks = np.array_split(data, pieces)
        merged = merge_all([MomentsSketch.from_data(c, k=6)
                            for c in chunks if c.size])
        assert merged.count == whole.count
        scale = np.maximum(np.abs(whole.power_sums), 1.0)
        np.testing.assert_allclose(merged.power_sums / scale,
                                   whole.power_sums / scale, atol=1e-9)

    @given(positive_datasets)
    @settings(max_examples=50, deadline=None)
    def test_serialization_roundtrip(self, data):
        sketch = MomentsSketch.from_data(data, k=7)
        restored = MomentsSketch.from_bytes(sketch.to_bytes())
        np.testing.assert_array_equal(restored.power_sums, sketch.power_sums)
        np.testing.assert_array_equal(restored.log_sums, sketch.log_sums)
        assert restored.min == sketch.min and restored.max == sketch.max

    @given(datasets, datasets)
    @settings(max_examples=50, deadline=None)
    def test_subtract_inverts_merge(self, base, extra):
        base = np.asarray(base)
        window = MomentsSketch.from_data(base, k=5)
        pane = MomentsSketch.from_data(extra, k=5)
        window.merge(pane)
        window.subtract(pane, new_min=float(base.min()), new_max=float(base.max()))
        reference = MomentsSketch.from_data(base, k=5)
        assert window.count == reference.count
        # Cancellation error scales with the magnitude of what transited
        # through the window (inherent to turnstile processing, not a bug):
        # normalize by the larger of the surviving and the removed sums.
        scale = np.maximum.reduce([np.abs(reference.power_sums),
                                   np.abs(pane.power_sums),
                                   np.ones_like(reference.power_sums)])
        np.testing.assert_allclose(window.power_sums / scale,
                                   reference.power_sums / scale, atol=1e-9)


class TestBoundProperties:
    @given(st.lists(finite_floats, min_size=3, max_size=300),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_markov_contains_truth(self, data, position):
        data = np.asarray(data)
        assume(data.max() > data.min())
        sketch = MomentsSketch.from_data(data, k=6)
        t = float(data.min() + position * (data.max() - data.min()))
        true_rank = int(np.sum(data < t))
        bounds = markov_bound(sketch, t)
        assert bounds.lower - 1e-6 * data.size <= true_rank
        assert true_rank <= bounds.upper + 1e-6 * data.size

    @given(st.lists(finite_floats, min_size=5, max_size=300),
           st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=60, deadline=None)
    def test_rtt_contains_truth(self, data, position):
        data = np.asarray(data)
        assume(data.max() > data.min())
        sketch = MomentsSketch.from_data(data, k=6)
        t = float(data.min() + position * (data.max() - data.min()))
        true_rank = int(np.sum(data < t))
        bounds = rtt_bound(sketch, t)
        # RTT tolerates small numeric slack from the Hankel/Vandermonde
        # solves; containment must hold to ~1e-3 of the population.
        assert bounds.lower - 1e-3 * data.size <= true_rank
        assert true_rank <= bounds.upper + 1e-3 * data.size

    @given(st.lists(positive_floats, min_size=10, max_size=200),
           st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=30, deadline=None)
    def test_rtt_never_wider_than_markov(self, data, position):
        data = np.asarray(data)
        assume(np.unique(data).size > 3)
        sketch = MomentsSketch.from_data(data, k=6)
        t = float(data.min() + position * (data.max() - data.min()))
        assert rtt_bound(sketch, t).width <= markov_bound(sketch, t).width + 1e-6


class TestCascadeProperties:
    @given(st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.05, max_value=0.99),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_cascade_agrees_with_maxent(self, position, phi, seed):
        rng = np.random.default_rng(seed)
        data = rng.lognormal(0.0, 1.0, 2000)
        sketch = MomentsSketch.from_data(data, k=8)
        t = float(data.min() + position * (data.max() - data.min()))
        cascade = ThresholdCascade()
        bare = ThresholdCascade(enabled_stages=())
        assert cascade.threshold(sketch, t, phi) == bare.threshold(sketch, t, phi)


class TestEncodingProperties:
    @given(positive_datasets, st.integers(min_value=8, max_value=30))
    @settings(max_examples=40, deadline=None)
    def test_codec_roundtrip_relative_error(self, data, mantissa_bits):
        sketch = MomentsSketch.from_data(data, k=5)
        codec = LowPrecisionCodec(mantissa_bits=mantissa_bits,
                                  exponent_bits=11, seed=0)
        restored = codec.decode(codec.encode(sketch))
        assert restored.count == sketch.count
        nonzero = sketch.power_sums[1:] != 0
        np.testing.assert_allclose(restored.power_sums[1:][nonzero],
                                   sketch.power_sums[1:][nonzero],
                                   rtol=2.0 ** -(mantissa_bits - 1))


class TestChebyshevProperties:
    coeffs = st.lists(st.floats(min_value=-5, max_value=5,
                                allow_nan=False), min_size=1, max_size=10)

    @given(coeffs, coeffs)
    @settings(max_examples=60, deadline=None)
    def test_product_linearization(self, a, b):
        a, b = np.asarray(a), np.asarray(b)
        u = np.linspace(-1, 1, 33)
        product = multiply_series(a, b)
        np.testing.assert_allclose(
            eval_chebyshev_series(product, u),
            eval_chebyshev_series(a, u) * eval_chebyshev_series(b, u),
            atol=1e-9)

    @given(coeffs)
    @settings(max_examples=60, deadline=None)
    def test_antiderivative_fundamental_theorem(self, a):
        a = np.asarray(a)
        anti = antiderivative_series(a)
        span = (eval_chebyshev_series(anti, np.asarray(1.0))
                - eval_chebyshev_series(anti, np.asarray(-1.0)))
        assert span == pytest.approx(integrate_series(a), abs=1e-9)

    @given(st.integers(min_value=0, max_value=20),
           st.floats(min_value=-1, max_value=1, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_chebyshev_bounded_on_support(self, order, u):
        assert abs(eval_chebyshev(order, np.asarray(u))) <= 1.0 + 1e-9


class TestSummaryHelpers:
    @given(st.lists(finite_floats, min_size=1, max_size=100),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_weighted_quantile_unit_weights_matches_rank(self, data, phi):
        values = np.asarray(data)
        weights = np.ones_like(values)
        result = weighted_quantile(values, weights, phi)
        sorted_values = np.sort(values)
        rank = min(int(np.ceil(phi * values.size)), values.size) - 1
        assert result == sorted_values[max(rank, 0)]

    @given(st.lists(finite_floats, min_size=2, max_size=400),
           st.integers(min_value=2, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_ew_hist_counts_conserved(self, data, max_bins):
        data = np.asarray(data)
        assume(np.isfinite(data).all())
        hist = EquiWidthHistogramSummary.from_data(data, max_bins=max_bins)
        assert float(hist._counts.sum()) == pytest.approx(data.size)
        assert hist.bin_count <= max_bins

    @given(st.lists(finite_floats, min_size=2, max_size=200), st.data())
    @settings(max_examples=40, deadline=None)
    def test_ew_hist_merge_count_exact(self, data, splitter):
        data = np.asarray(data)
        split = splitter.draw(st.integers(min_value=1, max_value=data.size - 1))
        a = EquiWidthHistogramSummary.from_data(data[:split], max_bins=16)
        b = EquiWidthHistogramSummary.from_data(data[split:], max_bins=16)
        a.merge(b)
        assert float(a._counts.sum()) == pytest.approx(data.size)
        assert a.count == data.size
