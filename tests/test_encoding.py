"""Tests for low-precision sketch storage (Appendix C)."""

import numpy as np
import pytest

from repro.core import MomentsSketch
from repro.core.encoding import LowPrecisionCodec, quantize
from repro.core.errors import EncodingError


class TestQuantize:
    def test_unbiased_in_expectation(self):
        rng = np.random.default_rng(0)
        value = np.full(20_000, np.pi)
        quantized = quantize(value, mantissa_bits=4, rng=rng)
        # Randomized rounding: the mean recovers the value far beyond 4-bit
        # precision (one 4-bit ulp here is ~0.2; the tolerance is ~3 standard
        # errors of the Bernoulli average).
        assert float(quantized.mean()) == pytest.approx(np.pi, abs=3e-3)
        assert np.unique(quantized).size <= 2  # rounds to two neighbours

    def test_relative_error_bounded(self):
        rng = np.random.default_rng(1)
        values = rng.lognormal(0, 5, 1000)
        quantized = quantize(values, mantissa_bits=10, rng=rng)
        # One ulp of a 10-bit significand is at most 2^-9 relative.
        np.testing.assert_allclose(quantized, values, rtol=2.0 ** -9)

    def test_zero_and_negative_preserved(self):
        rng = np.random.default_rng(2)
        values = np.asarray([0.0, -3.5, 2.25])
        quantized = quantize(values, mantissa_bits=8, rng=rng)
        assert quantized[0] == 0.0
        assert quantized[1] < 0
        assert quantized[2] > 0

    def test_exactly_representable_values_unchanged(self):
        rng = np.random.default_rng(3)
        values = np.asarray([1.0, 0.5, 2.0, 1.5])
        np.testing.assert_array_equal(quantize(values, 8, rng), values)

    def test_invalid_bits_rejected(self):
        with pytest.raises(EncodingError):
            quantize(np.asarray([1.0]), mantissa_bits=0)


class TestCodec:
    def make_sketch(self, seed=0, k=8):
        rng = np.random.default_rng(seed)
        return MomentsSketch.from_data(rng.uniform(0.5, 2.0, 5_000), k=k)

    def test_roundtrip_preserves_metadata(self):
        sketch = self.make_sketch()
        codec = LowPrecisionCodec(mantissa_bits=12, seed=0)
        restored = codec.decode(codec.encode(sketch))
        assert restored.k == sketch.k
        assert restored.count == sketch.count
        assert restored.min == sketch.min and restored.max == sketch.max
        assert restored.log_valid == sketch.log_valid

    def test_roundtrip_sums_within_quantization_error(self):
        sketch = self.make_sketch()
        codec = LowPrecisionCodec(mantissa_bits=16, seed=0)
        restored = codec.decode(codec.encode(sketch))
        np.testing.assert_allclose(restored.power_sums[1:], sketch.power_sums[1:],
                                   rtol=2.0 ** -15)
        np.testing.assert_allclose(restored.log_sums[1:], sketch.log_sums[1:],
                                   rtol=2.0 ** -15)

    def test_compression_ratio(self):
        sketch = self.make_sketch(k=10)
        codec = LowPrecisionCodec(mantissa_bits=11, exponent_bits=8)
        # 20 bits/value vs 64: about 3x smaller, the Appendix C headline.
        assert codec.bits_per_value == 20
        assert codec.size_bytes(sketch) < sketch.size_bytes() / 2

    def test_estimates_survive_compression(self):
        from repro.core import estimate_quantiles
        sketch = self.make_sketch(k=8)
        codec = LowPrecisionCodec(mantissa_bits=16, seed=1)
        restored = codec.decode(codec.encode(sketch))
        original = estimate_quantiles(sketch, [0.5, 0.9])
        compressed = estimate_quantiles(restored, [0.5, 0.9])
        np.testing.assert_allclose(compressed, original, rtol=1e-3)

    def test_parameter_validation(self):
        with pytest.raises(EncodingError):
            LowPrecisionCodec(mantissa_bits=0)
        with pytest.raises(EncodingError):
            LowPrecisionCodec(mantissa_bits=60)
        with pytest.raises(EncodingError):
            LowPrecisionCodec(exponent_bits=1)

    def test_corrupt_payload_rejected(self):
        sketch = self.make_sketch()
        codec = LowPrecisionCodec(mantissa_bits=10)
        blob = codec.encode(sketch)
        with pytest.raises(EncodingError):
            codec.decode(blob[:10])
        with pytest.raises(EncodingError):
            codec.decode(b"ZZZZ" + blob[4:])

    def test_narrow_exponent_field_overflow_detected(self):
        rng = np.random.default_rng(4)
        # Power sums of wide-range data span hundreds of exponents.
        sketch = MomentsSketch.from_data(rng.lognormal(0, 4, 2_000), k=12)
        codec = LowPrecisionCodec(mantissa_bits=10, exponent_bits=2)
        with pytest.raises(EncodingError):
            codec.encode(sketch)

    def test_merged_compressed_sketches_stay_accurate(self):
        """The Figure 17 property: randomized rounding keeps aggregates of
        many compressed sketches accurate."""
        from repro.core import merge_all, safe_estimate_quantiles
        rng = np.random.default_rng(5)
        # Centered data (c ~ 0): quantization noise is not amplified by the
        # Appendix-B binomial shift, the regime Appendix C targets ("the
        # data is well-centered").
        data = rng.uniform(-1.5, 1.5, 40_000)
        codec = LowPrecisionCodec(mantissa_bits=11, seed=2)
        compressed = []
        for chunk in np.split(data, 200):
            sketch = MomentsSketch.from_data(chunk, k=8, track_log=False)
            compressed.append(codec.decode(codec.encode(sketch)))
        merged = merge_all(compressed)
        estimates = safe_estimate_quantiles(merged, [0.1, 0.5, 0.9])
        truth = np.quantile(data, [0.1, 0.5, 0.9])
        np.testing.assert_allclose(estimates, truth, atol=0.05)
