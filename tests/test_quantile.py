"""Tests for end-to-end quantile estimation from sketches."""

import numpy as np
import pytest

from repro.core import (
    MomentsSketch,
    QuantileEstimator,
    SolverConfig,
    estimate_quantile,
    estimate_quantiles,
    safe_estimate_quantiles,
)
from repro.core.errors import EstimationError
from repro.workload.cells import PHI_GRID, quantile_errors


def eps_avg(data: np.ndarray, estimates: np.ndarray,
            phis: np.ndarray = PHI_GRID) -> float:
    return float(np.mean(quantile_errors(np.sort(data), estimates, phis)))


class TestAccuracy:
    """The paper's core claim: eps_avg <= 0.01 at k = 10 on real shapes."""

    @pytest.mark.parametrize("maker,label", [
        (lambda rng: rng.normal(0, 1, 60_000), "gaussian"),
        (lambda rng: rng.exponential(1, 60_000), "exponential"),
        (lambda rng: rng.lognormal(1, 1.5, 60_000), "lognormal"),
        (lambda rng: rng.uniform(5, 6, 60_000), "uniform"),
        (lambda rng: rng.gamma(0.5, 2.0, 60_000), "gamma"),
    ])
    def test_one_percent_error_at_k10(self, maker, label):
        rng = np.random.default_rng(hash(label) % 2 ** 31)
        data = maker(rng)
        sketch = MomentsSketch.from_data(data, k=10)
        estimates = estimate_quantiles(sketch, PHI_GRID)
        assert eps_avg(data, estimates) <= 0.01, label

    def test_more_moments_improve_accuracy(self):
        rng = np.random.default_rng(7)
        data = rng.gamma(2.0, 1.0, 60_000)
        sketch = MomentsSketch.from_data(data, k=12)
        coarse = estimate_quantiles(sketch, PHI_GRID, k1=2, k2=0)
        fine = estimate_quantiles(sketch, PHI_GRID, k1=10, k2=0)
        assert eps_avg(data, fine) < eps_avg(data, coarse)

    def test_quantiles_monotone_in_phi(self):
        rng = np.random.default_rng(8)
        sketch = MomentsSketch.from_data(rng.lognormal(0, 1, 20_000), k=10)
        qs = estimate_quantiles(sketch, np.linspace(0.01, 0.99, 33))
        assert np.all(np.diff(qs) >= -1e-9)

    def test_estimates_respect_support(self):
        rng = np.random.default_rng(9)
        data = rng.normal(50, 5, 20_000)
        sketch = MomentsSketch.from_data(data, k=8)
        qs = estimate_quantiles(sketch, [0.001, 0.5, 0.999])
        assert np.all(qs >= sketch.min) and np.all(qs <= sketch.max)


class TestEstimatorObject:
    def test_cdf_monotone_and_normalized(self):
        rng = np.random.default_rng(10)
        data = rng.exponential(1.0, 30_000)
        estimator = QuantileEstimator.fit(MomentsSketch.from_data(data, k=10))
        x = np.linspace(0.0, float(data.max()), 200)
        cdf = estimator.cdf(x)
        assert np.all(np.diff(cdf) >= -1e-9)
        assert cdf[0] == pytest.approx(0.0, abs=1e-6)
        assert cdf[-1] == pytest.approx(1.0, abs=1e-6)

    def test_cdf_clamps_outside_support(self):
        estimator = QuantileEstimator.fit(
            MomentsSketch.from_data(np.linspace(1, 2, 5000), k=6))
        assert estimator.cdf(np.asarray(0.5)) == 0.0
        assert estimator.cdf(np.asarray(2.5)) == 1.0

    def test_quantile_and_cdf_are_inverse(self):
        rng = np.random.default_rng(11)
        estimator = QuantileEstimator.fit(
            MomentsSketch.from_data(rng.normal(0, 1, 30_000), k=10))
        for phi in (0.1, 0.5, 0.9, 0.99):
            q = estimator.quantile(phi)
            assert float(estimator.cdf(np.asarray(q))) == pytest.approx(phi, abs=1e-3)

    def test_table_and_brent_paths_agree(self):
        # quantile() tabulates the CDF; quantile_brent() is the paper's
        # literal Brent formulation.  They must agree to interpolation slop.
        rng = np.random.default_rng(12)
        data = rng.lognormal(0.5, 1.0, 30_000)
        estimator = QuantileEstimator.fit(MomentsSketch.from_data(data, k=10))
        for phi in (0.05, 0.25, 0.5, 0.75, 0.95, 0.99):
            fast = estimator.quantile(phi)
            exact = estimator.quantile_brent(phi)
            scale = data.max() - data.min()
            assert abs(fast - exact) / scale < 1e-4

    def test_invalid_phi_rejected(self):
        estimator = QuantileEstimator.fit(
            MomentsSketch.from_data(np.linspace(0, 1, 1000), k=4))
        with pytest.raises(EstimationError):
            estimator.quantile(1.5)
        with pytest.raises(EstimationError):
            estimator.quantiles(np.asarray([-0.1]))

    def test_phi_endpoints_return_extrema(self):
        data = np.linspace(3.0, 9.0, 5000)
        estimator = QuantileEstimator.fit(MomentsSketch.from_data(data, k=6))
        assert estimator.quantile(0.0) == pytest.approx(3.0, abs=1e-6)
        assert estimator.quantile(1.0) == pytest.approx(9.0, abs=1e-6)


class TestDegenerateInputs:
    def test_point_mass_sketch(self):
        sketch = MomentsSketch.from_data(np.full(100, 7.5), k=6)
        estimator = QuantileEstimator.fit(sketch)
        assert estimator.is_point_mass
        assert estimator.quantile(0.5) == 7.5
        np.testing.assert_array_equal(estimator.quantiles(np.asarray([0.1, 0.9])),
                                      [7.5, 7.5])

    def test_single_value(self):
        assert estimate_quantile(MomentsSketch.from_data([42.0], k=4), 0.5) == 42.0

    def test_safe_estimation_on_two_point_data(self):
        # The raw solver cannot converge here; safe_* must still answer.
        data = np.asarray([0.0] * 700 + [1.0] * 300)
        sketch = MomentsSketch.from_data(data, k=10)
        qs = safe_estimate_quantiles(sketch, [0.5, 0.9])
        assert qs[0] == 0.0
        assert qs[1] == 1.0

    def test_override_moment_counts(self):
        rng = np.random.default_rng(13)
        sketch = MomentsSketch.from_data(rng.normal(0, 1, 10_000), k=10)
        estimator = QuantileEstimator.fit(sketch, k1=4, k2=0)
        assert estimator.basis.k1 == 4 and estimator.basis.k2 == 0


class TestSelectionIntegration:
    def test_long_tailed_data_uses_log_machinery(self):
        rng = np.random.default_rng(14)
        sketch = MomentsSketch.from_data(rng.lognormal(1, 1.5, 30_000), k=10)
        estimator = QuantileEstimator.fit(sketch)
        assert estimator.selection is not None
        assert estimator.selection.k2 > 0
        assert estimator.basis.domain == "log"

    def test_selection_respects_condition_budget(self):
        rng = np.random.default_rng(15)
        sketch = MomentsSketch.from_data(rng.normal(100, 1, 30_000), k=12)
        config = SolverConfig(max_condition_number=100.0)
        estimator = QuantileEstimator.fit(sketch, config=config)
        assert estimator.selection is not None
        assert estimator.selection.condition < 100.0
