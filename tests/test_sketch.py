"""Unit tests for the moments sketch data structure (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import MomentsSketch, merge_all
from repro.core.errors import (
    EmptySketchError,
    IncompatibleSketchError,
    SketchError,
)


class TestConstruction:
    def test_empty_sketch_state(self):
        sketch = MomentsSketch(k=5)
        assert sketch.is_empty
        assert sketch.count == 0
        assert sketch.min == np.inf and sketch.max == -np.inf

    def test_order_bounds_enforced(self):
        with pytest.raises(SketchError):
            MomentsSketch(k=0)
        with pytest.raises(SketchError):
            MomentsSketch(k=33)

    def test_from_data_matches_accumulate(self):
        data = np.arange(1.0, 101.0)
        a = MomentsSketch.from_data(data, k=6)
        b = MomentsSketch(k=6)
        b.accumulate(data)
        np.testing.assert_array_equal(a.power_sums, b.power_sums)
        np.testing.assert_array_equal(a.log_sums, b.log_sums)

    def test_default_footprint_under_200_bytes(self):
        # The paper's headline: k = 10 with both moment families < 200 bytes.
        sketch = MomentsSketch(k=10)
        assert sketch.size_bytes() < 200


class TestAccumulate:
    def test_power_sums_match_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.normal(3.0, 2.0, 777)
        sketch = MomentsSketch.from_data(data, k=8)
        assert sketch.count == 777
        assert sketch.min == data.min() and sketch.max == data.max()
        for i in range(9):
            assert sketch.power_sums[i] == pytest.approx(np.sum(data ** i), rel=1e-12)

    def test_log_sums_match_numpy_for_positive_data(self):
        rng = np.random.default_rng(1)
        data = rng.lognormal(0, 1, 500)
        sketch = MomentsSketch.from_data(data, k=6)
        assert sketch.has_log_moments
        logs = np.log(data)
        for i in range(7):
            assert sketch.log_sums[i] == pytest.approx(np.sum(logs ** i), rel=1e-12)

    def test_nonpositive_values_invalidate_log_moments(self):
        sketch = MomentsSketch(k=4)
        sketch.accumulate([1.0, 2.0, -3.0])
        assert not sketch.has_log_moments
        with pytest.raises(SketchError):
            sketch.log_moments()

    def test_scalar_and_empty_accumulate(self):
        sketch = MomentsSketch(k=3)
        sketch.accumulate(5.0)
        sketch.accumulate([])
        assert sketch.count == 1
        assert sketch.min == 5.0 == sketch.max

    def test_nan_rejected(self):
        sketch = MomentsSketch(k=3)
        with pytest.raises(SketchError):
            sketch.accumulate([1.0, np.nan])

    def test_incremental_equals_bulk(self):
        rng = np.random.default_rng(2)
        data = rng.exponential(1.0, 300)
        bulk = MomentsSketch.from_data(data, k=5)
        incremental = MomentsSketch(k=5)
        for value in data:
            incremental.accumulate(value)
        np.testing.assert_allclose(incremental.power_sums, bulk.power_sums, rtol=1e-9)


class TestMerge:
    def test_merge_equals_accumulate(self, rng=np.random.default_rng(3)):
        data = rng.lognormal(0, 1, 1000)
        whole = MomentsSketch.from_data(data, k=10)
        parts = [MomentsSketch.from_data(chunk, k=10)
                 for chunk in np.split(data, 10)]
        merged = merge_all(parts)
        assert merged.count == whole.count
        assert merged.min == whole.min and merged.max == whole.max
        np.testing.assert_allclose(merged.power_sums, whole.power_sums, rtol=1e-9)
        np.testing.assert_allclose(merged.log_sums, whole.log_sums, rtol=1e-9)

    def test_merge_returns_self_for_chaining(self):
        a = MomentsSketch.from_data([1.0], k=3)
        b = MomentsSketch.from_data([2.0], k=3)
        assert a.merge(b) is a

    def test_merge_order_mismatch_rejected(self):
        with pytest.raises(IncompatibleSketchError):
            MomentsSketch(k=3).merge(MomentsSketch(k=4))

    def test_merge_wrong_type_rejected(self):
        with pytest.raises(IncompatibleSketchError):
            MomentsSketch(k=3).merge("not a sketch")  # type: ignore[arg-type]

    def test_merging_log_invalid_poisons_log(self):
        good = MomentsSketch.from_data([1.0, 2.0], k=3)
        bad = MomentsSketch.from_data([-1.0, 2.0], k=3)
        good.merge(bad)
        assert not good.has_log_moments

    def test_merge_with_empty_is_identity(self):
        a = MomentsSketch.from_data([1.0, 2.0, 3.0], k=4)
        before = a.power_sums.copy()
        a.merge(MomentsSketch(k=4))
        np.testing.assert_array_equal(a.power_sums, before)

    def test_merge_all_empty_iterable_rejected(self):
        with pytest.raises(EmptySketchError):
            merge_all([])

    def test_merge_all_does_not_mutate_inputs(self):
        a = MomentsSketch.from_data([1.0], k=3)
        b = MomentsSketch.from_data([2.0], k=3)
        merge_all([a, b])
        assert a.count == 1 and b.count == 1


class TestSubtract:
    def test_turnstile_add_remove_roundtrip(self):
        rng = np.random.default_rng(4)
        base = rng.lognormal(0, 1, 500)
        extra = rng.lognormal(0, 1, 200)
        window = MomentsSketch.from_data(base, k=8)
        pane = MomentsSketch.from_data(extra, k=8)
        window.merge(pane)
        window.subtract(pane, new_min=float(base.min()), new_max=float(base.max()))
        reference = MomentsSketch.from_data(base, k=8)
        assert window.count == reference.count
        np.testing.assert_allclose(window.power_sums, reference.power_sums,
                                   rtol=1e-9, atol=1e-6)
        assert window.min == reference.min and window.max == reference.max

    def test_subtract_to_empty_resets_state(self):
        data = [1.0, 2.0, 3.0]
        sketch = MomentsSketch.from_data(data, k=4)
        sketch.subtract(MomentsSketch.from_data(data, k=4))
        assert sketch.is_empty
        assert np.all(sketch.power_sums == 0)

    def test_subtract_larger_count_rejected(self):
        small = MomentsSketch.from_data([1.0], k=3)
        big = MomentsSketch.from_data([1.0, 2.0], k=3)
        with pytest.raises(SketchError):
            small.subtract(big)


class TestAccessors:
    def test_standard_moments_normalized(self):
        sketch = MomentsSketch.from_data([1.0, 3.0], k=3)
        mu = sketch.standard_moments()
        assert mu[0] == 1.0
        assert mu[1] == pytest.approx(2.0)
        assert mu[2] == pytest.approx(5.0)

    def test_empty_sketch_estimation_rejected(self):
        with pytest.raises(EmptySketchError):
            MomentsSketch(k=3).standard_moments()

    def test_len_returns_count(self):
        assert len(MomentsSketch.from_data([1.0, 2.0, 3.0], k=3)) == 3


class TestSerialization:
    def test_roundtrip_preserves_state(self):
        rng = np.random.default_rng(5)
        sketch = MomentsSketch.from_data(rng.lognormal(0, 1, 321), k=7)
        restored = MomentsSketch.from_bytes(sketch.to_bytes())
        assert restored.k == sketch.k
        assert restored.count == sketch.count
        assert restored.min == sketch.min and restored.max == sketch.max
        np.testing.assert_array_equal(restored.power_sums, sketch.power_sums)
        np.testing.assert_array_equal(restored.log_sums, sketch.log_sums)
        assert restored.log_valid == sketch.log_valid

    def test_roundtrip_without_log_moments(self):
        sketch = MomentsSketch.from_data([1.0, 2.0], k=4, track_log=False)
        restored = MomentsSketch.from_bytes(sketch.to_bytes())
        assert not restored.track_log
        assert restored.count == 2

    def test_size_bytes_matches_serialized_length(self):
        for k, track_log in [(10, True), (10, False), (4, True)]:
            sketch = MomentsSketch.from_data([1.0, 2.0], k=k, track_log=track_log)
            assert len(sketch.to_bytes()) == sketch.size_bytes()

    def test_corrupt_buffers_rejected(self):
        sketch = MomentsSketch.from_data([1.0], k=3)
        blob = sketch.to_bytes()
        with pytest.raises(SketchError):
            MomentsSketch.from_bytes(blob[:4])
        with pytest.raises(SketchError):
            MomentsSketch.from_bytes(b"XXXX" + blob[4:])
        with pytest.raises(SketchError):
            MomentsSketch.from_bytes(blob + b"\x00" * 8)


class TestCopy:
    def test_copy_is_independent(self):
        original = MomentsSketch.from_data([1.0, 2.0], k=3)
        duplicate = original.copy()
        duplicate.accumulate([100.0])
        assert original.count == 2
        assert duplicate.count == 3
        assert original.max == 2.0


class TestSubtractEdgeCases:
    """Turnstile subtract corners that the packed pane ring leans on."""

    def test_subtract_to_empty_allows_fresh_reuse(self):
        sketch = MomentsSketch.from_data([-3.0, 5.0], k=4)
        assert not sketch.log_valid
        sketch.subtract(sketch.copy())
        assert sketch.is_empty
        assert sketch.log_valid  # reset with the rest of the state
        sketch.accumulate([2.0, 4.0])
        fresh = MomentsSketch.from_data([2.0, 4.0], k=4)
        assert np.array_equal(sketch.power_sums, fresh.power_sums)
        assert np.array_equal(sketch.log_sums, fresh.log_sums)
        assert sketch.has_log_moments

    def test_subtract_log_invalid_pane_poisons_window(self):
        window = MomentsSketch.from_data([1.0, 2.0, 3.0, 4.0], k=4)
        pane = MomentsSketch.from_data([-1.0, 2.0], k=4)
        assert window.log_valid and not pane.log_valid
        window.subtract(pane, new_min=1.0, new_max=4.0)
        assert not window.log_valid
        with pytest.raises(SketchError):
            window.log_moments()

    def test_subtract_log_invalid_empty_pane_keeps_window_valid(self):
        # An emptied log-invalid pane carries no data, so removing it
        # cannot poison the surviving window.
        window = MomentsSketch.from_data([1.0, 2.0], k=4)
        pane = MomentsSketch(k=4)
        pane.log_valid = False
        window.subtract(pane)
        assert window.log_valid

    def test_subtract_untracked_log_pane_poisons_tracked_window(self):
        window = MomentsSketch.from_data([1.0, 2.0, 3.0], k=4)
        pane = MomentsSketch.from_data([1.0], k=4, track_log=False)
        window.subtract(pane)
        assert not window.log_valid

    def test_count_underflow_rejected_after_turnstile_slides(self):
        window = MomentsSketch.from_data([1.0, 2.0, 3.0], k=4)
        pane = MomentsSketch.from_data([4.0, 5.0], k=4)
        window.merge(pane)
        window.subtract(pane, new_min=1.0, new_max=3.0)
        big = MomentsSketch.from_data(np.arange(1.0, 10.0), k=4)
        with pytest.raises(SketchError):
            window.subtract(big)
        # The failed subtract must not have mutated the window.
        assert window.count == 3

    def test_subtract_keeps_conservative_extrema_without_hints(self):
        window = MomentsSketch.from_data([1.0, 10.0], k=3)
        pane = MomentsSketch.from_data([10.0], k=3)
        window.subtract(pane)
        assert window.min == 1.0 and window.max == 10.0


class TestStandardMomentsAliasing:
    """standard_moments()/log_moments() must never alias sketch state."""

    def test_returned_array_is_not_a_view_of_power_sums(self):
        sketch = MomentsSketch.from_data([1.0, 2.0, 3.0], k=4)
        mu = sketch.standard_moments()
        assert not np.shares_memory(mu, sketch.power_sums)

    def test_caller_mutation_does_not_corrupt_sketch(self):
        sketch = MomentsSketch.from_data([1.0, 2.0, 3.0], k=4)
        before = sketch.power_sums.copy()
        mu = sketch.standard_moments()
        mu[:] = -999.0
        assert np.array_equal(sketch.power_sums, before)
        nu = sketch.log_moments()
        nu[:] = -999.0
        assert np.array_equal(sketch.power_sums, before)

    def test_repeated_calls_are_stable(self):
        sketch = MomentsSketch.from_data([1.0, 2.0, 3.0], k=4)
        first = sketch.standard_moments()
        first_copy = first.copy()
        second = sketch.standard_moments()
        assert np.array_equal(first_copy, second)
        assert first is not second
        first_log = sketch.log_moments()
        second_log = sketch.log_moments()
        assert np.array_equal(first_log, second_log)
        assert first_log is not second_log


class TestFromBytesAdversarial:
    """Wire-format fuzzing: corrupt inputs fail loudly, never silently."""

    def test_every_truncation_of_a_valid_blob_rejected(self):
        blob = MomentsSketch.from_data([1.0, 2.0], k=3).to_bytes()
        for cut in range(len(blob)):
            with pytest.raises(SketchError):
                MomentsSketch.from_bytes(blob[:cut])

    def test_truncations_of_logless_blob_rejected(self):
        blob = MomentsSketch.from_data([1.0, 2.0], k=3,
                                       track_log=False).to_bytes()
        for cut in range(len(blob)):
            with pytest.raises(SketchError):
                MomentsSketch.from_bytes(blob[:cut])

    def test_logless_roundtrip_state(self):
        sketch = MomentsSketch.from_data([0.5, -2.0, 7.0], k=3,
                                         track_log=False)
        restored = MomentsSketch.from_bytes(sketch.to_bytes())
        assert not restored.track_log
        assert not restored.log_valid
        assert np.array_equal(restored.power_sums, sketch.power_sums)
        assert restored.min == sketch.min and restored.max == sketch.max

    def test_corrupt_order_byte_rejected(self):
        blob = bytearray(MomentsSketch.from_data([1.0], k=3).to_bytes())
        blob[4] = 0
        with pytest.raises(SketchError):
            MomentsSketch.from_bytes(bytes(blob))
        blob[4] = 200
        with pytest.raises(SketchError):
            MomentsSketch.from_bytes(bytes(blob))

    def test_flag_byte_flip_changes_expected_length(self):
        # Clearing the track_log flag makes the payload too long for the
        # declared layout; the decoder must notice, not misparse.
        blob = bytearray(MomentsSketch.from_data([1.0], k=3).to_bytes())
        assert blob[5] & 1
        blob[5] = 0
        with pytest.raises(SketchError):
            MomentsSketch.from_bytes(bytes(blob))

    def test_empty_and_garbage_buffers_rejected(self):
        for junk in (b"", b"\x00", b"MSK1", b"\xff" * 7):
            with pytest.raises(SketchError):
                MomentsSketch.from_bytes(junk)
