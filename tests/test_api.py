"""Tests for the unified declarative query API (repro.api)."""

import json
import warnings

import numpy as np
import pytest

from repro.api import (Backend, QueryResponse, QueryService, QuerySpec,
                       SummariesBackend, WindowSpec, as_backend, execute, plan,
                       qkey)
from repro.core.errors import QueryError
from repro.core.params import normalize_q
from repro.datacube import CubeSchema, DataCube
from repro.druid import DruidEngine, MomentsSketchAggregator, registry
from repro.store import PackedSketchStore
from repro.summaries.moments_summary import MomentsSummary
from repro.window import build_panes, remerge_windows_packed


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(7)
    n = 20_000
    values = rng.lognormal(1.0, 1.0, n)
    country = rng.choice(["US", "CA", "MX"], n)
    version = rng.integers(0, 8, n)
    return values, country, version


@pytest.fixture(scope="module")
def cube(dataset):
    values, country, version = dataset
    cube = DataCube(CubeSchema(("country", "version")),
                    lambda: MomentsSummary(k=10))
    cube.ingest([country, version], values)
    return cube


@pytest.fixture(scope="module")
def engine(dataset):
    values, country, version = dataset
    engine = DruidEngine(
        dimensions=("country", "version"),
        aggregators=registry(moment_orders=(10,), histogram_bins=(100,)),
        granularity=3600.0, processing_threads=1)
    timestamps = np.linspace(0, 24 * 3600, values.size, endpoint=False)
    engine.ingest(timestamps, [country, version], values)
    return engine


class TestQuerySpec:
    def test_requires_known_kind(self):
        with pytest.raises(QueryError):
            QuerySpec(kind="median")

    def test_quantile_range_validated(self):
        with pytest.raises(QueryError):
            QuerySpec(kind="quantile", quantiles=(1.5,))

    def test_group_kinds_need_dimension(self):
        with pytest.raises(QueryError):
            QuerySpec(kind="group_by")
        with pytest.raises(QueryError):
            QuerySpec(kind="top_n", n=3)

    def test_top_n_needs_positive_n(self):
        with pytest.raises(QueryError):
            QuerySpec(kind="top_n", group_dimension="d", n=0)

    def test_threshold_kinds_need_thresholds(self):
        with pytest.raises(QueryError):
            QuerySpec(kind="cdf")
        with pytest.raises(QueryError):
            QuerySpec(kind="threshold_count", quantiles=(0.99,))

    def test_windowed_needs_window(self):
        with pytest.raises(QueryError):
            QuerySpec(kind="windowed", quantiles=(0.99,), thresholds=(1.0,))
        with pytest.raises(QueryError):
            WindowSpec(window_panes=0)

    def test_filters_mapping_normalized_sorted(self):
        spec = QuerySpec(kind="quantile", filters={"b": 1, "a": 2})
        assert spec.filters == (("a", 2), ("b", 1))
        assert spec.filters_dict() == {"a": 2, "b": 1}

    def test_json_round_trip(self):
        spec = QuerySpec(kind="top_n", quantiles=(0.99,), n=5,
                         group_dimension="country",
                         filters={"version": 3}, measure="m",
                         report_bounds=True)
        again = QuerySpec.from_json(spec.to_json())
        assert again == spec

    def test_windowed_json_round_trip(self):
        spec = QuerySpec(kind="windowed", quantiles=(0.95,), thresholds=(9.0,),
                         window=WindowSpec(window_panes=6, strategy="remerge"))
        assert QuerySpec.from_json(spec.to_json()) == spec

    def test_from_dict_accepts_scalar_aliases(self):
        spec = QuerySpec.from_dict({"kind": "quantile", "q": 0.9})
        assert spec.quantiles == (0.9,)
        spec = QuerySpec.from_dict(
            {"kind": "threshold_count", "q": 0.99, "t": 5.0})
        assert spec.thresholds == (5.0,)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(QueryError):
            QuerySpec.from_dict({"kind": "quantile", "frobnicate": 1})

    def test_qkey_distinguishes_close_floats(self):
        assert qkey(0.1234561) != qkey(0.1234562)
        assert qkey(0.5) == "0.5" and qkey(0.99) == "0.99"

    def test_scan_signature_shared_across_quantiles(self):
        a = QuerySpec(kind="quantile", quantiles=(0.5,), filters={"d": 1})
        b = QuerySpec(kind="quantile", quantiles=(0.99,), filters={"d": 1})
        c = QuerySpec(kind="quantile", quantiles=(0.5,), filters={"d": 2})
        assert a.scan_signature() == b.scan_signature()
        assert a.scan_signature() != c.scan_signature()


class TestNormalizeQ:
    def test_phi_keyword_warns(self):
        with pytest.warns(DeprecationWarning):
            assert normalize_q(phi=0.9) == 0.9

    def test_q_and_phi_conflict(self):
        with pytest.raises(QueryError), warnings.catch_warnings():
            warnings.simplefilter("ignore")
            normalize_q(q=0.5, phi=0.9)

    def test_default_applies(self):
        assert normalize_q(default=0.5) == 0.5
        with pytest.raises(QueryError):
            normalize_q()

    def test_range_checked(self):
        with pytest.raises(QueryError):
            normalize_q(q=1.0)


class TestExecuteKinds:
    def test_quantile_with_bounds(self, cube, dataset):
        values, *_ = dataset
        response = QueryService(cube=cube).execute(QuerySpec(
            kind="quantile", quantiles=(0.5, 0.99), report_bounds=True))
        assert response.kind == "quantile" and response.backend == "cube"
        assert response.route == "packed"
        assert response.count == values.size
        truth = np.quantile(values, 0.5)
        assert response.estimates[qkey(0.5)] == pytest.approx(truth, rel=0.05)
        assert response.value == response.estimates[qkey(0.5)]
        assert 0 < response.bounds[qkey(0.5)] <= 1.0

    def test_cdf(self, cube, dataset):
        values, *_ = dataset
        t = float(np.quantile(values, 0.75))
        response = QueryService(cube=cube).execute(QuerySpec(
            kind="cdf", thresholds=(t,), report_bounds=True))
        assert response.estimates[qkey(t)] == pytest.approx(0.75, abs=0.15)
        bounds = response.bounds[qkey(t)]
        assert bounds["rtt"]["lower"] <= 0.75 * values.size <= bounds["rtt"]["upper"]

    def test_threshold_count_over_groups(self, cube, dataset):
        values, country, version = dataset
        t = float(np.quantile(values, 0.9))
        response = QueryService(cube=cube).execute(QuerySpec(
            kind="threshold_count", quantiles=(0.99,), thresholds=(t,),
            group_dimension="version"))
        assert response.value == len(response.groups)  # all p99s beat the p90
        outcome = next(iter(response.groups.values()))[qkey(t)]
        assert set(outcome) == {"exceeds", "stage"}

    def test_group_by_matches_legacy(self, engine, dataset):
        values, country, version = dataset
        response = QueryService(druid=engine).execute(QuerySpec(
            kind="group_by", quantiles=(0.9,), measure="momentsSketch@10",
            group_dimension="country"))
        legacy = engine.group_by("momentsSketch@10", "country", 0.9)
        assert set(response.groups) == set(legacy)
        for value, payload in response.groups.items():
            assert payload[qkey(0.9)] == legacy[value]

    def test_top_n_identical_to_legacy(self, engine):
        from repro.druid import top_n_by_quantile
        response = QueryService(druid=engine).execute(QuerySpec(
            kind="top_n", quantiles=(0.99,), n=3,
            measure="momentsSketch@10", group_dimension="version"))
        legacy = top_n_by_quantile(engine, "momentsSketch@10", "version",
                                   n=3, q=0.99)
        assert response.top == legacy
        assert response.value == legacy[0][1]

    def test_windowed_matches_remerge(self, dataset):
        values, *_ = dataset
        panes = build_panes(values[:4000], pane_size=200, k=10)
        threshold = float(np.quantile(values[:4000], 0.98))
        response = QueryService(window=panes).execute(QuerySpec(
            kind="windowed", quantiles=(0.99,), thresholds=(threshold,),
            window=WindowSpec(window_panes=5, strategy="remerge")))
        direct = remerge_windows_packed(panes, 5, threshold, 0.99)
        assert response.merges == direct.windows_checked
        assert [(a["start_pane"], a["end_pane"]) for a in response.alerts] \
            == [(a.start_pane, a.end_pane) for a in direct.alerts]
        assert response.value == len(direct.alerts)

    def test_windowed_turnstile_runs(self, dataset):
        values, *_ = dataset
        panes = build_panes(values[:2000], pane_size=100, k=10)
        response = QueryService(window=panes).execute(QuerySpec(
            kind="windowed", quantiles=(0.99,), thresholds=(1e12,),
            window=WindowSpec(window_panes=4)))
        assert response.alerts == [] and response.route == "turnstile"

    def test_estimator_maxent_strict(self, cube):
        response = QueryService(cube=cube).execute(QuerySpec(
            kind="quantile", quantiles=(0.5,), estimator="maxent"))
        assert np.isfinite(response.value)

    def test_unknown_backend_rejected(self, cube):
        with pytest.raises(QueryError):
            QueryService(cube=cube).execute(
                QuerySpec(kind="quantile", backend="druid"))

    def test_no_matching_cells(self, cube):
        with pytest.raises(QueryError):
            QueryService(cube=cube).execute(QuerySpec(
                kind="quantile", filters={"country": "ZZ"}))

    def test_unsupported_interval_rejected_not_ignored(self, cube, engine):
        # Backends that cannot honor a constraint must refuse it rather
        # than silently answering over all time / all panes.
        service = QueryService(cube=cube, druid=engine)
        with pytest.raises(QueryError):
            service.execute(QuerySpec(kind="quantile",
                                      interval=(0.0, 3600.0)))
        with pytest.raises(QueryError):
            service.execute(QuerySpec(kind="group_by", quantiles=(0.5,),
                                      group_dimension="country",
                                      interval=(0.0, 3600.0)))
        with pytest.raises(QueryError):
            service.execute(QuerySpec(
                kind="group_by", quantiles=(0.5,),
                measure="momentsSketch@10", group_dimension="country",
                interval=(0.0, 3600.0), backend="druid"))

    def test_windowed_filters_rejected(self, dataset):
        values, *_ = dataset
        panes = build_panes(values[:1000], pane_size=100, k=10)
        with pytest.raises(QueryError):
            QueryService(window=panes).execute(QuerySpec(
                kind="windowed", quantiles=(0.99,), thresholds=(1.0,),
                filters={"service": "api"},
                window=WindowSpec(window_panes=2)))

    def test_spec_coercion_from_json_and_dict(self, cube):
        service = QueryService(cube=cube)
        a = service.execute('{"kind": "quantile", "q": 0.5}')
        b = service.execute({"kind": "quantile", "q": 0.5})
        assert a.value == b.value


class TestBatchedExecution:
    def test_one_merge_per_distinct_cell_subset(self, cube, monkeypatch):
        calls = []
        original = PackedSketchStore.batch_merge

        def counting(self, indices=None):
            calls.append(1)
            return original(self, indices)

        monkeypatch.setattr(PackedSketchStore, "batch_merge", counting)
        service = QueryService(cube=cube)
        specs = (
            # Four specs over one cell subset -> one packed merge.
            [QuerySpec(kind="quantile", quantiles=(q,))
             for q in (0.1, 0.5, 0.9, 0.99)]
            # A second distinct subset -> exactly one more merge.
            + [QuerySpec(kind="quantile", quantiles=(0.5,),
                         filters={"country": "US"}),
               QuerySpec(kind="cdf", thresholds=(5.0,),
                         filters={"country": "US"})])
        responses = service.execute_batch(specs)
        assert len(calls) == 2
        report = service.last_batch_report
        assert report.specs == 6 and report.distinct_scans == 2
        assert report.shared_hits == 4 and report.merge_calls == 2
        assert [r.shared_scan for r in responses] == [
            False, True, True, True, False, True]

    def test_batch_matches_individual_execution(self, cube):
        service = QueryService(cube=cube)
        specs = [QuerySpec(kind="quantile", quantiles=(q,))
                 for q in (0.2, 0.8)]
        batched = service.execute_batch(specs)
        singles = [service.execute(spec) for spec in specs]
        for one, many in zip(singles, batched):
            assert one.value == many.value

    def test_fused_multi_quantile_single_solve(self, cube):
        service = QueryService(cube=cube)
        responses = service.execute_batch(
            [QuerySpec(kind="quantile", quantiles=(q,))
             for q in (0.25, 0.5, 0.75)])
        # The shared summary caches its estimator: later specs reuse the
        # first solve, so their solve phase is drastically cheaper.
        assert responses[0].timings.solve_seconds > 0
        assert responses[1].timings.solve_seconds < responses[0].timings.solve_seconds
        fused = service.execute(QuerySpec(kind="quantile",
                                          quantiles=(0.25, 0.5, 0.75)))
        for q, response in zip((0.25, 0.5, 0.75), responses):
            assert fused.estimates[qkey(q)] == response.value

    def test_group_scans_shared(self, cube, monkeypatch):
        calls = []
        original = PackedSketchStore.batch_merge_groups

        def counting(self, rows, gids):
            calls.append(1)
            return original(self, rows, gids)

        monkeypatch.setattr(PackedSketchStore, "batch_merge_groups", counting)
        service = QueryService(cube=cube)
        service.execute_batch([
            QuerySpec(kind="group_by", quantiles=(0.5,),
                      group_dimension="country"),
            QuerySpec(kind="group_by", quantiles=(0.99,),
                      group_dimension="country"),
            QuerySpec(kind="top_n", quantiles=(0.99,), n=2,
                      group_dimension="country"),
        ])
        assert len(calls) == 1
        assert service.last_batch_report.shared_hits == 2


class TestLegacyShims:
    def test_druid_query_routes_through_api(self, engine):
        spec = QuerySpec(kind="quantile", quantiles=(0.99,),
                         measure="momentsSketch@10")
        via_api = QueryService(druid=engine).execute(spec)
        legacy = engine.query("momentsSketch@10", 0.99)
        assert legacy.value == via_api.value
        assert legacy.cells_scanned == via_api.cells_scanned

    def test_druid_timing_fields_consistent(self, engine, dataset):
        values, country, version = dataset
        packed = engine.query("momentsSketch@10", 0.9)
        loop = engine.query("S-Hist@100", 0.9)
        for result in (packed, loop):
            assert result.planner_seconds >= 0
            assert result.merge_seconds > 0
            assert result.finalize_seconds > 0
            assert result.solve_seconds == result.finalize_seconds
            assert result.total_seconds == pytest.approx(
                result.planner_seconds + result.merge_seconds
                + result.finalize_seconds)

    def test_cube_quantile_routes_through_api(self, cube):
        spec = QuerySpec(kind="quantile", quantiles=(0.95,),
                         filters={"country": "CA"})
        via_api = QueryService(cube=cube).execute(spec)
        assert cube.quantile(0.95, {"country": "CA"}) == via_api.value

    def test_cube_quantile_updates_last_merge_count(self, cube):
        ca_cells = sum(1 for key, _ in cube.matching_cells({"country": "CA"}))
        cube.quantile(0.5, {"country": "CA"})
        assert cube.last_merge_count == ca_cells
        cube.quantile(0.5)
        assert cube.last_merge_count == cube.num_cells

    def test_deprecated_phi_keyword_warns(self, cube, engine):
        with pytest.warns(DeprecationWarning):
            cube.quantile(phi=0.5)
        with pytest.warns(DeprecationWarning):
            engine.query("momentsSketch@10", phi=0.5)

    def test_canonical_q_keyword_is_silent(self, cube):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cube.quantile(q=0.5)


class TestBackendsAndPlanner:
    def test_as_backend_adapts_engines(self, cube, engine):
        assert as_backend(cube).name == "cube"
        assert as_backend(engine).name == "druid"
        assert as_backend(PackedSketchStore(k=4)).name == "packed"
        with pytest.raises(QueryError):
            as_backend(object())

    def test_as_backend_passthrough(self, cube):
        backend = as_backend(cube)
        assert as_backend(backend) is backend

    def test_as_backend_adapts_live_window_monitor(self):
        from repro.window import StreamingWindowMonitor
        monitor = StreamingWindowMonitor(pane_size=50, window_panes=4,
                                         threshold=float("inf"), k=6)
        with pytest.raises(QueryError):
            as_backend(monitor)  # no sealed panes yet
        monitor.ingest(np.linspace(1.0, 2.0, 200))
        backend = as_backend(monitor)
        assert backend.name == "window"
        response = QueryService(window=backend).execute(
            QuerySpec(kind="quantile", quantiles=(0.5,)))
        assert response.cells_scanned == 4
        assert response.count == 200

    def test_plan_modes(self, cube):
        backend = as_backend(cube)
        assert plan(QuerySpec(kind="quantile"), backend).mode == "rollup"
        assert plan(QuerySpec(kind="group_by", group_dimension="d"),
                    backend).mode == "group"
        with pytest.raises(QueryError):
            plan(QuerySpec(kind="windowed", quantiles=(0.9,),
                           thresholds=(1.0,),
                           window=WindowSpec(window_panes=2)), backend)

    def test_packed_store_backend_filters_and_groups(self):
        store = PackedSketchStore(k=6)
        rng = np.random.default_rng(3)
        keys = []
        for color in ("red", "blue", "red", "blue"):
            row = store.new_row()
            store.accumulate_row(row, rng.lognormal(1.0, 0.5, 500))
            keys.append((color,))
        service = QueryService(packed=as_backend(
            store, keys=keys, dimensions=("color",)))
        filtered = service.execute(QuerySpec(kind="quantile",
                                             filters={"color": "red"}))
        assert filtered.cells_scanned == 2
        grouped = service.execute(QuerySpec(kind="group_by", quantiles=(0.5,),
                                            group_dimension="color"))
        assert set(grouped.groups) == {"red", "blue"}

    def test_summaries_backend_rejects_filters(self):
        summary = MomentsSummary(k=6)
        summary.accumulate(np.arange(1.0, 100.0))
        with pytest.raises(QueryError):
            QueryService(s=SummariesBackend([summary])).execute(
                QuerySpec(kind="quantile", filters={"d": 1}))

    def test_execute_convenience(self, cube):
        response = execute(QuerySpec(kind="quantile"), cube)
        assert response.backend == "cube"

    def test_custom_backend_registration(self, cube):
        class Custom(Backend):
            name = "custom"

            def rollup(self, spec):
                return as_backend(cube).rollup(spec)

        response = QueryService(mine=Custom()).execute(
            QuerySpec(kind="quantile"))
        assert response.backend == "mine"


class TestResponseRoundTrip:
    def test_json_round_trip_stable(self, cube):
        response = QueryService(cube=cube).execute(QuerySpec(
            kind="quantile", quantiles=(0.5, 0.9), report_bounds=True,
            report_moments=True))
        text = response.to_json()
        again = QueryResponse.from_json(text)
        assert again.to_json() == text
        payload = json.loads(text)
        assert payload["backend"] == "cube"
        # Every route fills the solve accounting (the fused two-quantile
        # estimate is one scalar solve), so the JSON carries it too.
        assert set(payload["timings"]) == {"planner_seconds", "merge_seconds",
                                           "solve_seconds", "solve_calls",
                                           "solve_route"}
        assert payload["timings"]["solve_route"] == "scalar"
        assert payload["timings"]["solve_calls"] == 1

    def test_group_keys_stringified_in_json(self, engine):
        response = QueryService(druid=engine).execute(QuerySpec(
            kind="group_by", quantiles=(0.5,), measure="momentsSketch@10",
            group_dimension="version"))
        payload = response.to_dict()
        assert all(isinstance(key, str) for key in payload["groups"])
        again = QueryResponse.from_dict(payload)
        assert again.to_dict() == payload
