"""Tests for the workload harness: cells, runner, calibration, parallel."""

import numpy as np
import pytest

from repro.summaries import Merge12Summary, MomentsSummary
from repro.workload import (
    PHI_GRID,
    build_cells,
    build_packed_cells,
    calibrate,
    mean_error,
    merge_cells,
    parallel_merge,
    parallel_merge_packed,
    parameter_ladders,
    quantile_errors,
    run_packed_query,
    run_query,
    strong_scaling,
    time_estimation,
    time_merges,
    weak_scaling,
)


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(0)
    return rng.lognormal(0.5, 1.0, 20_000)


@pytest.fixture(scope="module")
def moment_cells(dataset):
    return build_cells(dataset, lambda: MomentsSummary(k=8), cell_size=200)


class TestCells:
    def test_cell_partition(self, dataset, moment_cells):
        assert moment_cells.num_cells == dataset.size // 200
        assert sum(s.count for s in moment_cells.summaries) == dataset.size

    def test_uneven_tail_cell(self):
        cells = build_cells(np.arange(450.0), lambda: MomentsSummary(k=4),
                            cell_size=200)
        assert cells.num_cells == 3
        assert cells.summaries[-1].count == 50

    def test_invalid_cell_size(self, dataset):
        with pytest.raises(ValueError):
            build_cells(dataset, lambda: MomentsSummary(k=4), cell_size=0)

    def test_merge_cells_matches_whole(self, dataset, moment_cells):
        merged = merge_cells(moment_cells.summaries)
        whole = MomentsSummary.from_data(dataset, k=8)
        np.testing.assert_allclose(merged.sketch.power_sums,
                                   whole.sketch.power_sums, rtol=1e-9)

    def test_quantile_errors_definition(self):
        data_sorted = np.arange(1000.0)
        # Estimate 504 for the median of 0..999: rank 504, target 500.
        errors = quantile_errors(data_sorted, np.asarray([504.0]),
                                 np.asarray([0.5]))
        assert errors[0] == pytest.approx(0.004)

    def test_mean_error_small_for_exact_summary(self, dataset):
        from repro.summaries import ExactSummary
        assert mean_error(dataset, ExactSummary.from_data(dataset)) < 1e-3


class TestRunner:
    def test_query_timing_decomposition(self, moment_cells):
        timing = run_query(moment_cells)
        assert timing.num_merges == moment_cells.num_cells - 1
        assert timing.merge_seconds > 0
        assert timing.estimate_seconds > 0
        assert timing.total_seconds == pytest.approx(
            timing.merge_seconds + timing.estimate_seconds)
        assert timing.mean_error < 0.02

    def test_query_with_cell_limit(self, moment_cells):
        timing = run_query(moment_cells, num_cells=10)
        assert timing.num_merges == 9

    def test_time_merges_positive(self, moment_cells):
        assert time_merges(moment_cells) > 0

    def test_time_estimation_uses_fresh_copies(self, dataset):
        summary = MomentsSummary.from_data(dataset, k=8)
        first = time_estimation(summary, repeats=2)
        # A cached estimator would make subsequent calls ~free; fresh copies
        # keep the measurement honest (solver runs every repeat).
        assert first > 1e-5


class TestCalibration:
    def test_finds_smallest_qualifying_parameter(self, dataset):
        ladder = parameter_ladders(seed=0)["M-Sketch"]
        result = calibrate(dataset, ladder, "M-Sketch", target=0.01)
        assert result.achieved_target
        assert result.mean_error <= 0.01
        assert result.size_bytes < 300

    def test_unreachable_target_returns_largest(self, dataset):
        ladder = parameter_ladders(seed=0)["EW-Hist"][:2]
        result = calibrate(dataset, ladder, "EW-Hist", target=1e-6)
        assert not result.achieved_target
        assert result.parameter_label == ladder[-1].label

    def test_ladders_cover_all_summaries(self):
        ladders = parameter_ladders()
        assert set(ladders) == {"M-Sketch", "Merge12", "RandomW", "GK",
                                "T-Digest", "Sampling", "S-Hist", "EW-Hist"}


class TestParallel:
    @pytest.fixture(scope="class")
    def summaries(self, dataset):
        return build_cells(dataset, lambda: Merge12Summary(k=16, seed=0),
                           cell_size=200).summaries

    def test_parallel_matches_sequential(self, summaries):
        sequential, _ = parallel_merge(summaries, threads=1)
        threaded, _ = parallel_merge(summaries, threads=4)
        assert threaded.count == sequential.count
        assert threaded.quantile(0.5) == pytest.approx(
            sequential.quantile(0.5), rel=0.25)

    def test_thread_validation(self, summaries):
        with pytest.raises(ValueError):
            parallel_merge(summaries, threads=0)
        with pytest.raises(ValueError):
            parallel_merge([], threads=1)

    def test_strong_scaling_shape(self, summaries):
        results = strong_scaling(summaries, [1, 2])
        assert [r.threads for r in results] == [1, 2]
        assert all(r.merges_per_second > 0 for r in results)
        assert all(r.route == "loop" for r in results)  # Merge12 cells

    def test_weak_scaling_work_grows(self, summaries):
        results = weak_scaling(summaries, [1, 2], merges_per_thread=50)
        assert results[0].num_merges == 49
        assert results[1].num_merges == 99


class TestParallelPacked:
    @pytest.fixture(scope="class")
    def cells(self, dataset):
        return build_packed_cells(dataset, cell_size=200, k=8)

    def test_packed_matches_serial_object_fold(self, cells):
        merged, _ = parallel_merge_packed(cells.store, threads=1)
        reference = merge_cells(cells.summaries)
        assert merged.count == reference.sketch.count
        assert np.array_equal(merged.power_sums, reference.sketch.power_sums)

    def test_threaded_partials_agree(self, cells):
        serial, _ = parallel_merge_packed(cells.store, threads=1)
        threaded, _ = parallel_merge_packed(cells.store, threads=4)
        assert threaded.count == serial.count
        assert threaded.min == serial.min and threaded.max == serial.max
        assert np.allclose(threaded.power_sums, serial.power_sums,
                           rtol=1e-12)

    def test_validation(self, cells):
        with pytest.raises(ValueError):
            parallel_merge_packed(cells.store, threads=0)
        with pytest.raises(ValueError):
            parallel_merge_packed(cells.store, threads=1,
                                  rows=np.array([], dtype=np.intp))

    def test_moments_scaling_takes_packed_route(self, cells, dataset):
        # PackedCellSet, bare store, and object moments cells all route
        # through the vectorized path with a serial baseline attached.
        for source in (cells, cells.store,
                       build_cells(dataset[:4000],
                                   lambda: MomentsSummary(k=8),
                                   200).summaries):
            results = strong_scaling(source, [1, 2])
            assert all(r.route == "packed" for r in results)
            assert all(r.serial_seconds is not None for r in results)
            assert all(r.speedup is not None for r in results)

    def test_weak_scaling_packed_tiles_rows(self, cells):
        results = weak_scaling(cells, [1, 2], merges_per_thread=50)
        assert [r.num_merges for r in results] == [49, 99]
        assert all(r.route == "packed" for r in results)
        assert all(r.speedup is not None for r in results)


class TestPackedCells:
    def test_packed_cells_match_loop_built_cells_bitwise(self):
        rng = np.random.default_rng(21)
        data = rng.lognormal(1, 1, 10_050)
        loop_cells = build_cells(data, lambda: MomentsSummary(k=8),
                                 cell_size=128)
        packed = build_packed_cells(data, cell_size=128, k=8,
                                    batch_rows=1_000)
        assert packed.num_cells == loop_cells.num_cells
        for i, summary in enumerate(loop_cells.summaries):
            assert summary.sketch.count == packed.store.counts[i]
            assert np.array_equal(summary.sketch.power_sums,
                                  packed.store.power_sums[i])

    def test_run_packed_query_matches_run_query(self):
        rng = np.random.default_rng(22)
        data = rng.lognormal(1, 1, 8_000)
        loop_cells = build_cells(data, lambda: MomentsSummary(k=8),
                                 cell_size=100)
        packed = build_packed_cells(data, cell_size=100, k=8)
        a = run_query(loop_cells, num_cells=40)
        b = run_packed_query(packed, num_cells=40)
        assert b.num_merges == a.num_merges
        assert b.mean_error == a.mean_error
        assert b.summary_name == "M-Sketch (packed)"

    def test_packed_cells_validate_inputs(self):
        with pytest.raises(ValueError):
            build_packed_cells(np.arange(10.0), cell_size=0)
        with pytest.raises(ValueError):
            run_packed_query(build_packed_cells(np.zeros(0), cell_size=10))

    def test_ingest_packed_cells_matches_builder_bitwise(self):
        from repro.workload import ingest_packed_cells
        rng = np.random.default_rng(23)
        data = rng.lognormal(1, 1, 10_050)
        direct = build_packed_cells(data, cell_size=128, k=8)
        via_api = ingest_packed_cells(data, cell_size=128, k=8)
        assert via_api.num_cells == direct.num_cells
        n = direct.num_cells
        assert np.array_equal(via_api.store.power_sums[:n],
                              direct.store.power_sums[:n])
        assert np.array_equal(via_api.store.log_sums[:n],
                              direct.store.log_sums[:n])
        with pytest.raises(ValueError):
            ingest_packed_cells(np.arange(10.0), cell_size=0)
