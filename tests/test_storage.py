"""Tests for the repro.storage persistent tiered layer.

Covers the four promises tiered storage makes:

* **format** — segment files round-trip bit-exactly (warm) or within
  the quantified codec tolerance (cold), and every corruption mode
  (bad checksum, truncation, torn manifest tail) is detected or
  tolerated as specified;
* **bit-exactness** — the read-modify-write LSM keeps every lossless
  tier bit-identical to a RAM packed store fed the identical batches,
  including after sealing, compaction, post-compaction writes, and
  crash recovery;
* **serving** — a TieredStore behind the unified query API answers
  every QuerySpec kind payload-identically to the packed backend;
* **cluster** — segment-granular snapshot replication ships only
  missing files and rebuilds bit-identical replicas.
"""

import json
import os
import shutil
import threading

import numpy as np
import pytest

from repro.api import QueryService, QuerySpec
from repro.core.errors import StorageError
from repro.ingest import IngestSession, IngestSpec, build_target
from repro.ingest.backends import PackedStoreWriteBackend
from repro.ingest.buffer import WriteBatch
from repro.storage import (ColdSpec, CompactionPolicy, Compactor,
                           DEFAULT_HOT_BUDGET, Manifest, MANIFEST_NAME,
                           TieredStore, build_segment_bytes, canonical_key,
                           open_segment, sort_key, write_segment)
from repro.store import PackedSketchStore

K = 7


# ----------------------------------------------------------------------
# Shared feeders: identical batches into tiered and RAM targets
# ----------------------------------------------------------------------

def batches(seed=0, n_batches=10, rows=200, cells=60):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n_batches):
        dims = rng.integers(0, cells, rows).astype(str)
        values = rng.lognormal(0.0, 1.0, rows) + 0.01
        out.append((dims, values))
    return out

def ram_reference(feed, k=K, track_log=True):
    """A RAM packed store fed the same batches (the bit-exact oracle)."""
    backend = PackedStoreWriteBackend(
        PackedSketchStore(k=k, track_log=track_log), dimensions=("cell",))
    for dims, values in feed:
        backend.write(WriteBatch(dims=(dims,), values=values,
                                 timestamps=None, sequence=None))
    return backend

def assert_bit_identical(store: TieredStore, reference) -> None:
    """gather() must equal the RAM store buffer-for-buffer, row order too."""
    gathered, keys = store.gather()
    ram = reference.store
    n = len(ram)
    assert len(gathered) == n
    ram_keys = [None] * n
    for key, row in reference._rows.items():
        ram_keys[row] = key
    assert keys == ram_keys
    np.testing.assert_array_equal(gathered.counts[:n], ram.counts[:n])
    np.testing.assert_array_equal(gathered.mins[:n], ram.mins[:n])
    np.testing.assert_array_equal(gathered.maxs[:n], ram.maxs[:n])
    np.testing.assert_array_equal(gathered.power_sums[:n],
                                  ram.power_sums[:n])
    np.testing.assert_array_equal(gathered.log_sums[:n], ram.log_sums[:n])
    np.testing.assert_array_equal(gathered.log_valid[:n], ram.log_valid[:n])


def small_store(path, seed=0, keys=12, rows=150) -> PackedSketchStore:
    rng = np.random.default_rng(seed)
    store = PackedSketchStore(k=K, track_log=True)
    key_list = []
    for i in range(keys):
        row = store.new_row()
        store.batch_accumulate(np.full(rows, row),
                               rng.lognormal(0, 1, rows) + 0.01)
        key_list.append((f"cell-{i:03d}",))
    return store, key_list


# ----------------------------------------------------------------------
# Segment format
# ----------------------------------------------------------------------

class TestSegmentFormat:

    def test_warm_round_trip_is_bit_exact(self, tmp_path):
        store, keys = small_store(tmp_path)
        path = tmp_path / "seg.rsg"
        write_segment(path, store, keys, np.arange(len(store)))
        reader = open_segment(path)
        try:
            assert reader.kind == 0 and reader.rows == len(store)
            assert reader.k == K and reader.track_log and reader.keeps_log
            # key index is re-sorted by sort key; map rows through it
            order = {key: row for row, key in enumerate(reader.keys)}
            for ram_row, key in enumerate(keys):
                row = order[key]
                assert reader.counts[row] == store.counts[ram_row]
                np.testing.assert_array_equal(
                    reader.power_sums[row], store.power_sums[ram_row])
                np.testing.assert_array_equal(
                    reader.log_sums[row], store.log_sums[ram_row])
                assert reader.first_seen[row] == ram_row
        finally:
            reader.close()

    def test_cold_round_trip_within_codec_tolerance(self, tmp_path):
        store, keys = small_store(tmp_path)
        path = tmp_path / "cold.rsg"
        spec = ColdSpec(mantissa_bits=10, keep_log=True)
        write_segment(path, store, keys, np.arange(len(store)), cold=spec)
        reader = open_segment(path)
        try:
            assert reader.kind == 1 and reader.codec == spec
            order = {key: row for row, key in enumerate(reader.keys)}
            rows = [order[key] for key in keys]
            n = len(store)
            np.testing.assert_array_equal(reader.counts[rows],
                                          store.counts[:n])
            # outward-rounded f32 bounds stay conservative
            assert np.all(reader.mins[rows] <= store.mins[:n])
            assert np.all(reader.maxs[rows] >= store.maxs[:n])
            rel = np.abs(reader.power_sums[rows, 1:]
                         - store.power_sums[:n, 1:]) \
                / np.abs(store.power_sums[:n, 1:])
            assert rel.max() < 2.0 ** -9  # randomized 10-bit mantissa
        finally:
            reader.close()

    def test_cold_drops_log_family_honestly(self, tmp_path):
        store, keys = small_store(tmp_path)
        path = tmp_path / "cold.rsg"
        write_segment(path, store, keys, np.arange(len(store)),
                      cold=ColdSpec(keep_log=False))
        reader = open_segment(path)
        try:
            assert not reader.keeps_log
            assert not reader.log_valid.any()
        finally:
            reader.close()

    def test_checksum_corruption_detected(self, tmp_path):
        store, keys = small_store(tmp_path)
        path = tmp_path / "seg.rsg"
        write_segment(path, store, keys, np.arange(len(store)))
        blob = bytearray(path.read_bytes())
        blob[100] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(StorageError, match="checksum"):
            open_segment(path)
        # verify=False skips the scan, so the flip goes unnoticed
        open_segment(path, verify=False).close()

    def test_truncated_segment_detected(self, tmp_path):
        store, keys = small_store(tmp_path)
        path = tmp_path / "seg.rsg"
        write_segment(path, store, keys, np.arange(len(store)))
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(StorageError):
            open_segment(path)

    def test_duplicate_keys_rejected(self, tmp_path):
        store, keys = small_store(tmp_path)
        keys[1] = keys[0]
        with pytest.raises(StorageError, match="duplicate"):
            build_segment_bytes(store, keys, np.arange(len(store)))

    def test_key_range_pruning(self, tmp_path):
        store, keys = small_store(tmp_path)
        path = tmp_path / "seg.rsg"
        write_segment(path, store, keys, np.arange(len(store)))
        reader = open_segment(path)
        try:
            assert reader.maybe_contains(sort_key(keys[3]))
            assert not reader.maybe_contains(sort_key(("zzz",)))
            hits = reader.rows_for([sort_key(keys[0]), sort_key(("nope",))])
            assert hits[0] >= 0 and hits[1] == -1
        finally:
            reader.close()

    def test_canonical_key_survives_json_round_trip(self):
        key = canonical_key((np.int64(3), "svc", 2.5, None, True))
        back = tuple(json.loads(json.dumps(list(key))))
        assert back == key


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------

class TestManifest:

    def test_commit_and_reopen(self, tmp_path):
        manifest = Manifest.create(tmp_path, {"k": K})
        manifest.commit(["seg-00000000-aaaaaaaa.rsg"])
        manifest.commit(["seg-00000000-aaaaaaaa.rsg",
                         "seg-00000001-bbbbbbbb.rsg"])
        reopened = Manifest.open(tmp_path)
        assert list(reopened.segments) == ["seg-00000000-aaaaaaaa.rsg",
                                           "seg-00000001-bbbbbbbb.rsg"]
        assert reopened.meta["k"] == K

    def test_torn_tail_keeps_last_good_line(self, tmp_path):
        manifest = Manifest.create(tmp_path, {"k": K})
        manifest.commit(["seg-00000000-aaaaaaaa.rsg"])
        with open(tmp_path / MANIFEST_NAME, "a", encoding="utf-8") as fh:
            fh.write('{"seq": 99, "torn": tru')
        reopened = Manifest.open(tmp_path)
        assert list(reopened.segments) == ["seg-00000000-aaaaaaaa.rsg"]

    def test_unparseable_manifest_raises(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("garbage\n", encoding="utf-8")
        with pytest.raises(StorageError):
            Manifest.open(tmp_path)


# ----------------------------------------------------------------------
# Tiered store: the LSM bit-exactness contract
# ----------------------------------------------------------------------

class TestTieredBitExact:

    def make_pair(self, tmp_path, hot_budget=1500, seed=0, **kwargs):
        feed = batches(seed=seed, **kwargs)
        store = TieredStore(tmp_path / "tiers", k=K, track_log=True,
                            dimensions=("cell",),
                            hot_budget_bytes=hot_budget)
        for dims, values in feed:
            store.ingest_columns([dims], values)
        return store, ram_reference(feed)

    def test_sealed_store_matches_ram(self, tmp_path):
        store, reference = self.make_pair(tmp_path)
        try:
            assert store.stats()["seals"] >= 3  # the budget actually trips
            assert_bit_identical(store, reference)
        finally:
            store.close(seal=False)

    def test_compaction_preserves_bit_exactness(self, tmp_path):
        store, reference = self.make_pair(tmp_path)
        try:
            rounds = Compactor(store).run_until_stable()
            assert rounds and sum(r["reclaimed_rows"] for r in rounds) > 0
            assert_bit_identical(store, reference)
        finally:
            store.close(seal=False)

    def test_writes_after_compaction_stay_exact(self, tmp_path):
        store, reference = self.make_pair(tmp_path)
        try:
            Compactor(store).run_until_stable()
            extra = batches(seed=77, n_batches=3)
            for dims, values in extra:
                store.ingest_columns([dims], values)
                reference.write(WriteBatch(dims=(dims,), values=values,
                                           timestamps=None, sequence=None))
            assert_bit_identical(store, reference)
        finally:
            store.close(seal=False)

    def test_reopen_after_close_is_exact(self, tmp_path):
        store, reference = self.make_pair(tmp_path)
        store.close(seal=True)  # spill the hot tail too
        reopened = TieredStore(tmp_path / "tiers")
        try:
            assert reopened.k == K and reopened.dimensions == ("cell",)
            assert_bit_identical(reopened, reference)
        finally:
            reopened.close(seal=False)

    def test_crash_recovery_is_exact(self, tmp_path):
        store, reference = self.make_pair(tmp_path)
        store.close(seal=True)
        home = tmp_path / "tiers"
        # simulate a crash mid-compaction: torn manifest tail, a stale
        # temp file, and a fully-written but never-committed segment
        with open(home / MANIFEST_NAME, "a", encoding="utf-8") as fh:
            fh.write('{"seq": 12345, "torn": tru')
        (home / "seg-99999999-deadbeef.rsg.tmp").write_bytes(b"junk")
        committed = sorted(p.name for p in home.glob("seg-*.rsg"))
        uncommitted = home / "seg-99999998-cafecafe.rsg"
        shutil.copyfile(home / committed[0], uncommitted)
        reopened = TieredStore(home)
        try:
            assert_bit_identical(reopened, reference)
            # the orphan sweep removed both stray files
            assert not uncommitted.exists()
            assert not list(home.glob("*.tmp"))
        finally:
            reopened.close(seal=False)

    def test_probe_prefers_newest_version(self, tmp_path):
        store, reference = self.make_pair(tmp_path)
        try:
            gathered, keys = store.gather()
            for key in (keys[0], keys[-1]):
                sketch = store.probe(key)
                row = keys.index(key)
                assert sketch.count == gathered.counts[row]
                np.testing.assert_array_equal(
                    np.asarray(sketch.power_sums),
                    gathered.power_sums[row])
            assert store.probe(("never-seen",)) is None
        finally:
            store.close(seal=False)

    def test_conflicting_reopen_parameters_rejected(self, tmp_path):
        store = TieredStore(tmp_path / "t", k=K, dimensions=("cell",))
        store.ingest_columns([np.array(["a", "b"])], np.array([1.0, 2.0]))
        store.close()
        with pytest.raises(StorageError):
            TieredStore(tmp_path / "t", k=K + 1)


# ----------------------------------------------------------------------
# Tiered store: serving through the unified API
# ----------------------------------------------------------------------

ALL_KINDS = (
    QuerySpec(kind="quantile", quantiles=(0.1, 0.5, 0.99)),
    QuerySpec(kind="quantile", quantiles=(0.5,), filters={"cell": "7"}),
    QuerySpec(kind="cdf", thresholds=(1.0, 5.0)),
    QuerySpec(kind="threshold_count", quantiles=(0.9,), thresholds=(2.0,),
              group_dimension="cell"),
    QuerySpec(kind="group_by", quantiles=(0.5, 0.95),
              group_dimension="cell"),
    QuerySpec(kind="top_n", quantiles=(0.99,), group_dimension="cell", n=5),
)


def payload(response) -> dict:
    out = response.to_dict()
    out.pop("timings", None)
    out.pop("backend", None)
    return out


class TestTieredServing:

    def test_every_query_kind_matches_packed(self, tmp_path):
        feed = batches(seed=5)
        store = TieredStore(tmp_path / "t", k=K, dimensions=("cell",),
                            hot_budget_bytes=1500)
        try:
            for dims, values in feed:
                store.ingest_columns([dims], values)
            reference = ram_reference(feed)
            service = QueryService(tiered=store,
                                   packed=reference.read_target())
            for spec in ALL_KINDS:
                tiered = payload(service.execute(spec, backend="tiered"))
                packed = payload(service.execute(spec, backend="packed"))
                assert tiered == packed, spec.kind
        finally:
            store.close(seal=False)

    def test_ingest_session_builds_tiered_target(self, tmp_path):
        spec = IngestSpec(backend="tiered", dimensions=("cell",), k=K,
                          storage_dir=str(tmp_path / "t"),
                          hot_budget_bytes=2048, flush_rows=None)
        feed = batches(seed=9, n_batches=4)
        with IngestSession(build_target(spec), spec) as session:
            for dims, values in feed:
                session.append_columns(values, dims=[dims])
                session.flush()
            assert session.backend.name == "tiered"
            store = session.backend.read_target()
            assert isinstance(store, TieredStore)
            assert_bit_identical(store, ram_reference(feed))
            store.close(seal=False)


# ----------------------------------------------------------------------
# Compaction policy, background compactor, demotion
# ----------------------------------------------------------------------

class TestCompaction:

    def test_policy_picks_oldest_same_level_run(self):
        import types
        policy = CompactionPolicy(size_ratio=4.0, min_run=2, max_run=3)
        sizes = [100, 5, 6, 7, 9]  # one big old segment, then small L0s
        segments = [types.SimpleNamespace(rows=n) for n in sizes]
        start, stop = policy.pick_run(segments)
        assert (start, stop) == (1, 4)  # clipped to max_run, oldest first
        assert policy.pick_run([types.SimpleNamespace(rows=5)]) is None

    def test_background_compactor_converges(self, tmp_path):
        store = TieredStore(tmp_path / "t", k=K, dimensions=("cell",),
                            hot_budget_bytes=1200)
        try:
            with Compactor(store, interval=0.01) as compactor:
                for dims, values in batches(seed=11, n_batches=8):
                    store.ingest_columns([dims], values)
                deadline = threading.Event()
                deadline.wait(0.3)
            Compactor(store).run_until_stable()
            assert len(store.stats()["segments"]) <= 3
        finally:
            store.close(seal=False)

    def test_demotion_shrinks_disk_within_tolerance(self, tmp_path):
        store = TieredStore(tmp_path / "t", k=K, dimensions=("cell",),
                            hot_budget_bytes=1500)
        try:
            feed = batches(seed=13)
            for dims, values in feed:
                store.ingest_columns([dims], values)
            Compactor(store).run_until_stable()
            store.seal()
            before = store.disk_bytes()
            warm, keys = store.gather()
            store.demote(count=len(store.stats()["segments"]),
                         spec=ColdSpec(mantissa_bits=10, keep_log=True))
            stats = store.stats()
            assert stats["warm_bytes"] == 0 and stats["cold_bytes"] > 0
            assert store.disk_bytes() < before
            cold, cold_keys = store.gather()
            assert cold_keys == keys
            n = len(warm)
            rel = np.abs(cold.power_sums[:n, 1:] - warm.power_sums[:n, 1:]) \
                / np.abs(warm.power_sums[:n, 1:])
            assert rel.max() < 2.0 ** -9
            np.testing.assert_array_equal(cold.counts[:n], warm.counts[:n])
        finally:
            store.close(seal=False)


# ----------------------------------------------------------------------
# Cluster: segment-granular snapshot replication
# ----------------------------------------------------------------------

class TestClusterSegmentReplication:

    @staticmethod
    def make_cluster(storage_root=None):
        from repro.cluster import ClusterCoordinator
        from repro.druid import MomentsSketchAggregator
        return ClusterCoordinator(
            dimensions=("cell",),
            aggregators={"value": MomentsSketchAggregator(k=K)},
            num_shards=8, replication=2, nodes=["n0", "n1", "n2"],
            storage_root=storage_root)

    @staticmethod
    def feed(cluster, seed, n=1500):
        rng = np.random.default_rng(seed)
        timestamps = rng.uniform(0, 3600, n)
        cells = rng.integers(0, 25, n).astype(str)
        cluster.ingest(timestamps, [cells], rng.lognormal(0, 1, n) + 0.01)

    @staticmethod
    def answers(cluster):
        service = QueryService(cluster=cluster)
        return payload(service.execute(
            QuerySpec(kind="quantile", quantiles=(0.5, 0.99))))

    def test_file_repair_matches_blob_repair(self, tmp_path):
        blob = self.make_cluster()
        files = self.make_cluster(storage_root=str(tmp_path / "root"))
        self.feed(blob, 1)
        self.feed(files, 1)
        assert self.answers(blob) == self.answers(files)
        blob.fail_node("n1")
        files.fail_node("n1")
        assert self.answers(blob) == self.answers(files)
        self.feed(blob, 2, n=400)
        self.feed(files, 2, n=400)
        blob.restore_node("n1")
        files.restore_node("n1")
        assert self.answers(blob) == self.answers(files)

    @staticmethod
    def shard_state(node, shard):
        """Serialized (chunk, aggregator) state of one shard's engine."""
        engine = node._shard_engine(shard)
        return {
            (segment.chunk, name): (store.to_bytes(),
                                    tuple(sorted(
                                        segment.packed_rows[name].items())))
            for segment in engine.segments.values()
            for name, store in segment.packed.items()}

    def test_export_import_round_trip(self, tmp_path):
        cluster = self.make_cluster()
        self.feed(cluster, 3)
        node = cluster.nodes[cluster.live_nodes[0]]
        shard = node.owned_shards[0]
        outdir = tmp_path / "export"
        report = node.export_shard_files(shard, outdir)
        assert report["files"] >= 1 and (outdir / "SHARD.json").exists()
        # re-export writes nothing new (content-named files)
        again = node.export_shard_files(shard, outdir)
        assert again["bytes_written"] == 0
        target = cluster.nodes[cluster.live_nodes[1]]
        target.drop_shard(shard)
        target.import_shard_files(shard, outdir)
        assert self.shard_state(target, shard) \
            == self.shard_state(node, shard)
