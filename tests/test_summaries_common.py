"""Contract tests every mergeable summary must satisfy (Section 3.2).

Parametrized over the full registry so a new summary automatically
inherits the mergeability/accuracy contract checks.
"""

import numpy as np
import pytest

from repro.summaries import SUMMARY_REGISTRY
from repro.workload.cells import PHI_GRID, quantile_errors

PARAMS = {
    "M-Sketch": dict(k=10),
    "Merge12": dict(k=32, seed=0),
    "RandomW": dict(buffer_size=256, seed=0),
    "GK": dict(epsilon=1.0 / 50),
    "T-Digest": dict(delta=100.0),
    "Sampling": dict(capacity=2000, seed=0),
    "S-Hist": dict(max_bins=100),
    "EW-Hist": dict(max_bins=100),
    "Exact": dict(),
}

#: Summaries whose estimates are coarse on long-tailed data get a looser
#: accuracy budget in the contract checks (their Figure 7 behaviour).
ACCURACY_BUDGET = {
    "M-Sketch": 0.01, "Merge12": 0.02, "RandomW": 0.03, "GK": 0.05,
    "T-Digest": 0.01, "Sampling": 0.06, "S-Hist": 0.10, "EW-Hist": 0.35,
    "Exact": 1e-4,
}


def make(name):
    return SUMMARY_REGISTRY[name](**PARAMS[name])


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(42)
    return rng.lognormal(0.5, 1.0, 20_000)


@pytest.fixture(scope="module")
def sorted_data(data):
    return np.sort(data)


@pytest.mark.parametrize("name", list(SUMMARY_REGISTRY))
class TestSummaryContract:
    def test_count_tracks_inserts(self, name):
        summary = make(name)
        summary.accumulate(np.arange(1.0, 501.0))
        assert summary.count == 500
        summary.accumulate(7.5)
        assert summary.count == 501

    def test_quantile_bounded_by_observed_range(self, name, data):
        summary = make(name)
        summary.accumulate(data)
        for phi in (0.0, 0.01, 0.5, 0.99, 1.0):
            q = summary.quantile(phi)
            assert data.min() - 1e-9 <= q <= data.max() + 1e-9

    def test_quantiles_monotone(self, name, data):
        summary = make(name)
        summary.accumulate(data)
        qs = summary.quantiles(np.linspace(0.05, 0.95, 10))
        assert np.all(np.diff(qs) >= -1e-9 * max(1.0, abs(qs[-1])))

    def test_pointwise_accuracy(self, name, data, sorted_data):
        summary = make(name)
        summary.accumulate(data)
        errors = quantile_errors(sorted_data, summary.quantiles(PHI_GRID), PHI_GRID)
        assert float(np.mean(errors)) <= ACCURACY_BUDGET[name]

    def test_merged_accuracy(self, name, data, sorted_data):
        """Merging pre-aggregated chunks must stay within 3x the budget —
        the mergeability property (no catastrophic loss vs pointwise)."""
        chunks = np.split(data, 50)
        summaries = [make(name) for _ in chunks]
        for summary, chunk in zip(summaries, chunks):
            summary.accumulate(chunk)
        aggregate = summaries[0]
        for other in summaries[1:]:
            aggregate = aggregate.merge(other)
        assert aggregate.count == data.size
        errors = quantile_errors(sorted_data, aggregate.quantiles(PHI_GRID), PHI_GRID)
        assert float(np.mean(errors)) <= 3.0 * ACCURACY_BUDGET[name]

    def test_merge_returns_self(self, name):
        a, b = make(name), make(name)
        a.accumulate([1.0, 2.0])
        b.accumulate([3.0])
        assert a.merge(b) is a
        assert a.count == 3

    def test_merge_rejects_other_types(self, name):
        other_name = "GK" if name != "GK" else "Sampling"
        with pytest.raises(TypeError):
            make(name).merge(make(other_name))

    def test_copy_isolated_from_original(self, name):
        original = make(name)
        original.accumulate(np.linspace(1, 10, 100))
        clone = original.copy()
        clone.accumulate(np.full(100, 1e6))
        assert original.count == 100
        assert original.quantile(0.999) <= 10.0 + 1e-9

    def test_size_bytes_positive_and_sublinear(self, name, data):
        summary = make(name)
        summary.accumulate(data)
        size = summary.size_bytes()
        assert size > 0
        if name != "Exact":
            assert size < 8 * data.size / 4, "summary should compress"

    def test_empty_summary_raises_on_quantile(self, name):
        summary = make(name)
        with pytest.raises(Exception):
            summary.quantile(0.5)

    def test_error_upper_bound_dominates_truth(self, name, data, sorted_data):
        summary = make(name)
        summary.accumulate(data)
        for phi in (0.1, 0.5, 0.9):
            bound = summary.error_upper_bound(phi)
            if bound is None:
                continue
            estimate = summary.quantile(phi)
            actual = quantile_errors(sorted_data, np.asarray([estimate]),
                                     np.asarray([phi]))[0]
            slack = 0.05 if name in ("RandomW", "Sampling") else 1e-6
            assert actual <= bound + slack


class TestRegistry:
    def test_registry_names_match_paper(self):
        expected = {"M-Sketch", "Merge12", "RandomW", "GK", "T-Digest",
                    "Sampling", "S-Hist", "EW-Hist", "Exact"}
        assert set(SUMMARY_REGISTRY) == expected

    def test_display_names_consistent(self):
        for name, cls in SUMMARY_REGISTRY.items():
            assert cls.name == name
