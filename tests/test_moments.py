"""Unit tests for moment conversions and the Appendix-B stability math."""

import numpy as np
import pytest

from repro.core import moments as mo


def direct_chebyshev_moments(data: np.ndarray, support: mo.ScaledSupport,
                             order: int) -> np.ndarray:
    """Ground truth: evaluate T_i on scaled data and average."""
    u = support.scale(data)
    return np.asarray([np.mean(np.cos(i * np.arccos(np.clip(u, -1, 1))))
                       for i in range(order + 1)])


class TestScaledSupport:
    def test_scale_maps_endpoints(self):
        support = mo.ScaledSupport(3.0, 11.0)
        assert support.scale(np.asarray(3.0)) == -1.0
        assert support.scale(np.asarray(11.0)) == 1.0
        assert support.scale(np.asarray(7.0)) == 0.0

    def test_unscale_is_inverse(self):
        support = mo.ScaledSupport(-2.5, 9.0)
        x = np.linspace(-2.5, 9.0, 17)
        np.testing.assert_allclose(support.unscale(support.scale(x)), x, atol=1e-12)

    def test_center_offset_definition(self):
        support = mo.ScaledSupport(20.0, 100.0)
        # center 60, half-width 40 -> c = 1.5
        assert support.center_offset == pytest.approx(1.5)

    def test_degenerate_support(self):
        support = mo.ScaledSupport(4.0, 4.0)
        assert support.degenerate
        assert support.center_offset == 0.0
        assert np.all(support.scale(np.asarray([4.0, 4.0])) == 0.0)


class TestRawMoments:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.normal(2.0, 3.0, 1000)
        sums = np.asarray([np.sum(data ** i) for i in range(6)])
        mu = mo.raw_moments(sums, data.size)
        for i in range(6):
            assert mu[i] == pytest.approx(np.mean(data ** i))

    def test_zeroth_moment_forced_to_one(self):
        mu = mo.raw_moments(np.array([999.0, 5.0]), 10)
        assert mu[0] == 1.0

    def test_nonpositive_count_rejected(self):
        with pytest.raises(ValueError):
            mo.raw_moments(np.array([1.0]), 0)


class TestShiftedScaledMoments:
    @pytest.mark.parametrize("lo,hi", [(0.0, 1.0), (-5.0, 5.0), (20.0, 100.0)])
    def test_matches_direct_computation(self, lo, hi):
        rng = np.random.default_rng(1)
        data = rng.uniform(lo, hi, 5000)
        support = mo.ScaledSupport(float(data.min()), float(data.max()))
        mu = mo.raw_moments(np.asarray([np.sum(data ** i) for i in range(9)]), data.size)
        scaled = mo.shifted_scaled_moments(mu, support)
        u = support.scale(data)
        for i in range(9):
            assert scaled[i] == pytest.approx(np.mean(u ** i), abs=1e-9)

    def test_scaled_moments_bounded_by_one(self):
        rng = np.random.default_rng(2)
        data = rng.exponential(1.0, 2000)
        support = mo.ScaledSupport(float(data.min()), float(data.max()))
        mu = mo.raw_moments(np.asarray([np.sum(data ** i) for i in range(7)]), data.size)
        scaled = mo.shifted_scaled_moments(mu, support)
        assert np.all(np.abs(scaled) <= 1.0 + 1e-9)

    def test_degenerate_support_gives_point_mass_moments(self):
        support = mo.ScaledSupport(5.0, 5.0)
        scaled = mo.shifted_scaled_moments(np.array([1.0, 5.0, 25.0]), support)
        np.testing.assert_allclose(scaled, [1.0, 0.0, 0.0])


class TestChebyshevMoments:
    def test_matches_direct_average(self):
        rng = np.random.default_rng(3)
        data = rng.beta(2.0, 5.0, 4000) * 10 + 2
        support = mo.ScaledSupport(float(data.min()), float(data.max()))
        sums = np.asarray([np.sum(data ** i) for i in range(11)])
        result = mo.power_sums_to_chebyshev_moments(sums, data.size, support)
        expected = direct_chebyshev_moments(data, support, 10)
        np.testing.assert_allclose(result, expected, atol=1e-7)

    def test_chebyshev_moments_bounded(self):
        rng = np.random.default_rng(4)
        data = rng.normal(0, 1, 3000)
        support = mo.ScaledSupport(float(data.min()), float(data.max()))
        sums = np.asarray([np.sum(data ** i) for i in range(11)])
        result = mo.power_sums_to_chebyshev_moments(sums, data.size, support)
        assert np.all(np.abs(result) <= 1.0 + 1e-9)
        assert result[0] == pytest.approx(1.0)


class TestStability:
    def test_shift_error_bound_grows_with_order_and_offset(self):
        assert (mo.shift_error_bound(4, 0.0)
                < mo.shift_error_bound(8, 0.0)
                < mo.shift_error_bound(8, 2.0))

    def test_max_stable_order_centered_data(self):
        # Eq. 21: c = 0 gives k ~ 17, capped at 16 per the paper's findings.
        assert mo.max_stable_order(0.0) == 16

    def test_max_stable_order_offset_two(self):
        # Paper: range [xmin, 3 xmin] -> c = 2 -> at least 10 stable moments.
        assert 10 <= mo.max_stable_order(2.0) <= 11

    def test_max_stable_order_monotone_in_offset(self):
        orders = [mo.max_stable_order(c) for c in (0.0, 1.0, 2.0, 5.0, 20.0)]
        assert orders == sorted(orders, reverse=True)

    def test_empirical_stability_flags_blowup(self):
        good = np.array([1.0, 0.1, 0.5, -0.2])
        assert mo.stable_order_empirical(good) == 3
        bad = np.array([1.0, 0.1, 0.5, 37.0])
        assert mo.stable_order_empirical(bad) == 2
        nan = np.array([1.0, np.nan])
        assert mo.stable_order_empirical(nan) == 0


class TestUniformChebyshevMoments:
    def test_closed_form(self):
        values = mo.uniform_chebyshev_moments(6)
        # E[T_i(U)] = 0 for odd i, 1/(1 - i^2) for even i.
        assert values[0] == 1.0
        assert values[1] == 0.0
        assert values[2] == pytest.approx(-1.0 / 3.0)
        assert values[4] == pytest.approx(-1.0 / 15.0)
        assert values[6] == pytest.approx(-1.0 / 35.0)

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(5)
        u = rng.uniform(-1, 1, 400_000)
        expected = mo.uniform_chebyshev_moments(5)
        for i in range(6):
            empirical = np.mean(np.cos(i * np.arccos(u)))
            assert empirical == pytest.approx(expected[i], abs=5e-3)
