"""Tests for sliding-window threshold queries (turnstile semantics)."""

import numpy as np
import pytest

from repro.core import MomentsSketch
from repro.summaries import Merge12Summary, MomentsSummary
from repro.window import (
    TurnstileWindowProcessor,
    build_panes,
    inject_spikes,
    pack_panes,
    remerge_windows,
    remerge_windows_packed,
)


@pytest.fixture(scope="module")
def spiked_stream():
    rng = np.random.default_rng(0)
    values = rng.lognormal(1.0, 1.0, 60_000)  # q99 around 60
    pane_size = 500
    spike_panes = list(range(40, 52)) + list(range(80, 92))
    values = inject_spikes(values, pane_size, spike_panes,
                           spike_value=5000.0, spike_fraction=0.1)
    return values, pane_size, spike_panes


class TestPanes:
    def test_pane_partition(self, spiked_stream):
        values, pane_size, _ = spiked_stream
        panes = build_panes(values, pane_size)
        assert len(panes) == values.size // pane_size
        assert sum(p.count for p in panes) == values.size

    def test_pane_extrema_exact(self, spiked_stream):
        values, pane_size, _ = spiked_stream
        panes = build_panes(values, pane_size)
        chunk = values[:pane_size]
        assert panes[0].min == chunk.min() and panes[0].max == chunk.max()


class TestTurnstile:
    def test_window_state_matches_fresh_merge(self, spiked_stream):
        """After many slides, the turnstile window must equal a from-scratch
        merge of the panes it covers (the subtract correctness property)."""
        values, pane_size, _ = spiked_stream
        panes = build_panes(values, pane_size)[:40]
        w = 24
        window = panes[0].sketch.copy()
        for pane in panes[1:w]:
            window.merge(pane.sketch)
        for position in range(len(panes) - w):
            window.merge(panes[position + w].sketch)
            surviving = panes[position + 1:position + w + 1]
            window.subtract(panes[position].sketch,
                            new_min=min(p.min for p in surviving),
                            new_max=max(p.max for p in surviving))
        reference = panes[len(panes) - w].sketch.copy()
        for pane in panes[len(panes) - w + 1:]:
            reference.merge(pane.sketch)
        assert window.count == reference.count
        np.testing.assert_allclose(window.power_sums, reference.power_sums,
                                   rtol=1e-6)
        assert window.min == reference.min and window.max == reference.max

    def test_detects_spike_windows(self, spiked_stream):
        values, pane_size, spike_panes = spiked_stream
        panes = build_panes(values, pane_size)
        processor = TurnstileWindowProcessor(panes, window_panes=24)
        result = processor.query(threshold=1500.0, q=0.99)
        assert result.alerts, "spikes must be detected"
        spike_set = set(spike_panes)
        for alert in result.alerts:
            covered = set(range(alert.start_pane, alert.end_pane + 1))
            assert covered & spike_set, f"false alarm at {alert}"

    def test_no_alerts_without_spikes(self):
        rng = np.random.default_rng(1)
        values = rng.lognormal(1.0, 1.0, 30_000)
        panes = build_panes(values, 500)
        processor = TurnstileWindowProcessor(panes, window_panes=24)
        result = processor.query(threshold=float(values.max()) * 2, q=0.99)
        assert not result.alerts

    def test_window_parameter_validation(self, spiked_stream):
        values, pane_size, _ = spiked_stream
        panes = build_panes(values, pane_size)
        with pytest.raises(ValueError):
            TurnstileWindowProcessor(panes, window_panes=0)
        with pytest.raises(ValueError):
            TurnstileWindowProcessor(panes[:3], window_panes=10)


class TestRemergeBaseline:
    def test_same_alerts_as_turnstile(self, spiked_stream):
        """Both strategies see the same data; alert sets should agree on
        clear spikes (estimators differ slightly on borderline windows)."""
        values, pane_size, spike_panes = spiked_stream
        panes = build_panes(values, pane_size)
        turnstile = TurnstileWindowProcessor(
            panes, window_panes=24).query(1500.0, 0.99)
        pane_summaries = [
            Merge12Summary.from_data(values[i * pane_size:(i + 1) * pane_size],
                                     k=32, seed=0)
            for i in range(len(panes))]
        remerge = remerge_windows(pane_summaries, 24, 1500.0, 0.99)
        set_a = {a.start_pane for a in turnstile.alerts}
        set_b = {a.start_pane for a in remerge.alerts}
        union = set_a | set_b
        assert union, "both must alert"
        overlap = len(set_a & set_b) / len(union)
        assert overlap > 0.5

    def test_windows_checked_count(self, spiked_stream):
        values, pane_size, _ = spiked_stream
        panes = build_panes(values, pane_size)
        processor = TurnstileWindowProcessor(panes, window_panes=24)
        result = processor.query(threshold=1e12, q=0.99)
        assert result.windows_checked == len(panes) - 24 + 1


class TestSpikeInjection:
    def test_spike_changes_only_selected_panes(self):
        rng = np.random.default_rng(2)
        values = rng.uniform(0, 1, 10_000)
        spiked = inject_spikes(values, 1000, [3], spike_value=99.0)
        for pane in range(10):
            chunk = spiked[pane * 1000:(pane + 1) * 1000]
            if pane == 3:
                assert np.any(chunk == 99.0)
            else:
                assert not np.any(chunk == 99.0)

    def test_out_of_range_pane_ignored(self):
        values = np.zeros(100)
        spiked = inject_spikes(values, 50, [10], spike_value=1.0)
        np.testing.assert_array_equal(spiked, values)


class TestPackedPaneRing:
    def test_pack_panes_roundtrip(self):
        rng = np.random.default_rng(0)
        panes = build_panes(rng.lognormal(1, 1, 5000), pane_size=250, k=6)
        store = pack_panes(panes)
        assert len(store) == len(panes)
        for i, pane in enumerate(panes):
            assert np.array_equal(store.power_sums[i], pane.sketch.power_sums)

    def test_rebuild_window_matches_sequential_merge(self):
        rng = np.random.default_rng(1)
        panes = build_panes(rng.lognormal(1, 1, 4000), pane_size=200, k=6)
        processor = TurnstileWindowProcessor(panes, window_panes=5)
        for position in (0, 3, len(panes) - 5):
            rebuilt = processor.rebuild_window(position)
            expected = panes[position].sketch.copy()
            for pane in panes[position + 1:position + 5]:
                expected.merge(pane.sketch)
            assert expected.count == rebuilt.count
            assert np.array_equal(expected.power_sums, rebuilt.power_sums)

    def test_packed_remerge_matches_loop_remerge(self):
        rng = np.random.default_rng(2)
        values = inject_spikes(rng.lognormal(1, 1, 8000), pane_size=200,
                               spike_panes=[12, 13, 14], spike_value=400.0)
        panes = build_panes(values, pane_size=200, k=8)
        summaries = []
        for pane in panes:
            summary = MomentsSummary(k=8)
            summary.sketch = pane.sketch.copy()
            summaries.append(summary)
        threshold = 100.0
        loop = remerge_windows(summaries, window_panes=6, threshold=threshold)
        packed = remerge_windows_packed(panes, window_panes=6,
                                        threshold=threshold)
        assert packed.windows_checked == loop.windows_checked
        assert ([(a.start_pane, a.end_pane) for a in packed.alerts]
                == [(a.start_pane, a.end_pane) for a in loop.alerts])
        assert packed.alerts  # the spike must actually fire

    def test_packed_remerge_agrees_with_turnstile(self):
        rng = np.random.default_rng(3)
        values = inject_spikes(rng.lognormal(1, 1, 6000), pane_size=200,
                               spike_panes=[20, 21], spike_value=500.0)
        panes = build_panes(values, pane_size=200, k=8)
        threshold = 120.0
        turnstile = TurnstileWindowProcessor(panes, window_panes=4).query(threshold)
        packed = remerge_windows_packed(panes, window_panes=4,
                                        threshold=threshold)
        assert ([(a.start_pane, a.end_pane) for a in packed.alerts]
                == [(a.start_pane, a.end_pane) for a in turnstile.alerts])

    def test_packed_remerge_validates_window(self):
        panes = build_panes(np.arange(1.0, 100.0), pane_size=10, k=4)
        with pytest.raises(ValueError):
            remerge_windows_packed(panes, window_panes=0, threshold=1.0)
        with pytest.raises(ValueError):
            remerge_windows_packed(panes, window_panes=len(panes) + 1,
                                   threshold=1.0)
