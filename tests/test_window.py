"""Tests for sliding-window threshold queries (turnstile semantics)."""

import numpy as np
import pytest

from repro.core import MomentsSketch
from repro.summaries import Merge12Summary
from repro.window import (
    TurnstileWindowProcessor,
    build_panes,
    inject_spikes,
    remerge_windows,
)


@pytest.fixture(scope="module")
def spiked_stream():
    rng = np.random.default_rng(0)
    values = rng.lognormal(1.0, 1.0, 60_000)  # q99 around 60
    pane_size = 500
    spike_panes = list(range(40, 52)) + list(range(80, 92))
    values = inject_spikes(values, pane_size, spike_panes,
                           spike_value=5000.0, spike_fraction=0.1)
    return values, pane_size, spike_panes


class TestPanes:
    def test_pane_partition(self, spiked_stream):
        values, pane_size, _ = spiked_stream
        panes = build_panes(values, pane_size)
        assert len(panes) == values.size // pane_size
        assert sum(p.count for p in panes) == values.size

    def test_pane_extrema_exact(self, spiked_stream):
        values, pane_size, _ = spiked_stream
        panes = build_panes(values, pane_size)
        chunk = values[:pane_size]
        assert panes[0].min == chunk.min() and panes[0].max == chunk.max()


class TestTurnstile:
    def test_window_state_matches_fresh_merge(self, spiked_stream):
        """After many slides, the turnstile window must equal a from-scratch
        merge of the panes it covers (the subtract correctness property)."""
        values, pane_size, _ = spiked_stream
        panes = build_panes(values, pane_size)[:40]
        w = 24
        window = panes[0].sketch.copy()
        for pane in panes[1:w]:
            window.merge(pane.sketch)
        for position in range(len(panes) - w):
            window.merge(panes[position + w].sketch)
            surviving = panes[position + 1:position + w + 1]
            window.subtract(panes[position].sketch,
                            new_min=min(p.min for p in surviving),
                            new_max=max(p.max for p in surviving))
        reference = panes[len(panes) - w].sketch.copy()
        for pane in panes[len(panes) - w + 1:]:
            reference.merge(pane.sketch)
        assert window.count == reference.count
        np.testing.assert_allclose(window.power_sums, reference.power_sums,
                                   rtol=1e-6)
        assert window.min == reference.min and window.max == reference.max

    def test_detects_spike_windows(self, spiked_stream):
        values, pane_size, spike_panes = spiked_stream
        panes = build_panes(values, pane_size)
        processor = TurnstileWindowProcessor(panes, window_panes=24)
        result = processor.query(threshold=1500.0, phi=0.99)
        assert result.alerts, "spikes must be detected"
        spike_set = set(spike_panes)
        for alert in result.alerts:
            covered = set(range(alert.start_pane, alert.end_pane + 1))
            assert covered & spike_set, f"false alarm at {alert}"

    def test_no_alerts_without_spikes(self):
        rng = np.random.default_rng(1)
        values = rng.lognormal(1.0, 1.0, 30_000)
        panes = build_panes(values, 500)
        processor = TurnstileWindowProcessor(panes, window_panes=24)
        result = processor.query(threshold=float(values.max()) * 2, phi=0.99)
        assert not result.alerts

    def test_window_parameter_validation(self, spiked_stream):
        values, pane_size, _ = spiked_stream
        panes = build_panes(values, pane_size)
        with pytest.raises(ValueError):
            TurnstileWindowProcessor(panes, window_panes=0)
        with pytest.raises(ValueError):
            TurnstileWindowProcessor(panes[:3], window_panes=10)


class TestRemergeBaseline:
    def test_same_alerts_as_turnstile(self, spiked_stream):
        """Both strategies see the same data; alert sets should agree on
        clear spikes (estimators differ slightly on borderline windows)."""
        values, pane_size, spike_panes = spiked_stream
        panes = build_panes(values, pane_size)
        turnstile = TurnstileWindowProcessor(
            panes, window_panes=24).query(1500.0, 0.99)
        pane_summaries = [
            Merge12Summary.from_data(values[i * pane_size:(i + 1) * pane_size],
                                     k=32, seed=0)
            for i in range(len(panes))]
        remerge = remerge_windows(pane_summaries, 24, 1500.0, 0.99)
        set_a = {a.start_pane for a in turnstile.alerts}
        set_b = {a.start_pane for a in remerge.alerts}
        union = set_a | set_b
        assert union, "both must alert"
        overlap = len(set_a & set_b) / len(union)
        assert overlap > 0.5

    def test_windows_checked_count(self, spiked_stream):
        values, pane_size, _ = spiked_stream
        panes = build_panes(values, pane_size)
        processor = TurnstileWindowProcessor(panes, window_panes=24)
        result = processor.query(threshold=1e12, phi=0.99)
        assert result.windows_checked == len(panes) - 24 + 1


class TestSpikeInjection:
    def test_spike_changes_only_selected_panes(self):
        rng = np.random.default_rng(2)
        values = rng.uniform(0, 1, 10_000)
        spiked = inject_spikes(values, 1000, [3], spike_value=99.0)
        for pane in range(10):
            chunk = spiked[pane * 1000:(pane + 1) * 1000]
            if pane == 3:
                assert np.any(chunk == 99.0)
            else:
                assert not np.any(chunk == 99.0)

    def test_out_of_range_pane_ignored(self):
        values = np.zeros(100)
        spiked = inject_spikes(values, 50, [10], spike_value=1.0)
        np.testing.assert_array_equal(spiked, values)
