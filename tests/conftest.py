"""Shared fixtures: small deterministic datasets and pre-built sketches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MomentsSketch


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def gaussian_data(rng) -> np.ndarray:
    return rng.normal(0.0, 1.0, 50_000)


@pytest.fixture(scope="session")
def lognormal_data(rng) -> np.ndarray:
    return rng.lognormal(1.0, 1.5, 50_000)


@pytest.fixture(scope="session")
def exponential_data(rng) -> np.ndarray:
    return rng.exponential(1.0, 50_000)


@pytest.fixture(scope="session")
def uniform_data(rng) -> np.ndarray:
    return rng.uniform(10.0, 20.0, 50_000)


@pytest.fixture()
def gaussian_sketch(gaussian_data) -> MomentsSketch:
    return MomentsSketch.from_data(gaussian_data, k=10)


@pytest.fixture()
def lognormal_sketch(lognormal_data) -> MomentsSketch:
    return MomentsSketch.from_data(lognormal_data, k=10)


def true_quantile_error(data: np.ndarray, estimate: float, phi: float) -> float:
    """Paper Eq. (1): normalized rank error of an estimate."""
    data_sorted = np.sort(data)
    rank = np.searchsorted(data_sorted, estimate, side="left")
    return abs(rank - np.floor(phi * data.size)) / data.size


@pytest.fixture(scope="session")
def quantile_error():
    return true_quantile_error
