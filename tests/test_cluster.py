"""Tests for the repro.cluster scatter-gather serving layer.

Covers the three promises the cluster makes:

* **placement** — consistent-hash shard ownership is deterministic,
  keeps ``replication`` distinct owners, moves ~K/N shards per node add,
  and never disturbs shards the changed node did not own;
* **replication** — every live replica of a shard is bit-identical, and
  node add / graceful remove / fail+repair keep every shard at
  ``replication`` live owners;
* **serving** — any :class:`~repro.api.QuerySpec` through
  ``as_backend(cluster)`` answers identically before and after topology
  changes, with scan sharing in ``execute_batch``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import QueryService, QuerySpec, as_backend, qkey
from repro.cluster import (ClusterBackend, ClusterBroker, ClusterCoordinator,
                           HashRing, shard_of, stable_hash)
from repro.core.errors import ClusterError, QueryError
from repro.druid import (DoubleSumAggregator, DruidEngine,
                         MomentsSketchAggregator)

K = 8  # moment order for test clusters


def make_cluster(nodes=4, shards=16, replication=2, **kwargs):
    return ClusterCoordinator(
        dimensions=("cell",),
        aggregators={"m": MomentsSketchAggregator(k=K),
                     "total": DoubleSumAggregator()},
        num_shards=shards, replication=replication, granularity=1.0,
        nodes=[f"n{i}" for i in range(nodes)], **kwargs)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(11)
    values = rng.lognormal(1.0, 1.1, 20_000)
    cells = (np.arange(values.size) // 200).astype(int)
    return values, cells


def ingest(cluster, data, shard_aligned=True):
    values, cells = data
    if shard_aligned:
        timestamps = cluster.shard_ids([cells]).astype(float)
    else:
        timestamps = np.zeros(values.size)
    cluster.ingest(timestamps, [cells], values)
    return timestamps


# ----------------------------------------------------------------------
# Hash ring placement
# ----------------------------------------------------------------------

class TestStableHash:
    def test_deterministic_and_type_normalized(self):
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))
        assert stable_hash((np.str_("a"), np.int64(1))) == stable_hash(("a", 1))

    def test_equal_comparing_keys_hash_alike(self):
        # Routing must agree with == cell matching across the numeric
        # tower: a float-typed filter still finds int-keyed cells.
        assert stable_hash((1.0,)) == stable_hash((1,)) == stable_hash((True,))
        assert stable_hash((np.float64(7.0),)) == stable_hash((7,))
        assert stable_hash((1.5,)) != stable_hash((1,))

    def test_shard_of_range(self):
        shards = {shard_of(("cell", i), 16) for i in range(200)}
        assert shards <= set(range(16))
        assert len(shards) > 1

    def test_shard_of_validates(self):
        with pytest.raises(ClusterError):
            shard_of(("x",), 0)


class TestHashRing:
    def test_owner_invariants(self):
        ring = HashRing(nodes=["a", "b", "c"], replication=2)
        for shard in range(64):
            owners = ring.owners(shard)
            assert len(owners) == 2
            assert len(set(owners)) == 2
            assert ring.owners(shard) == owners  # deterministic

    def test_fewer_nodes_than_replication(self):
        ring = HashRing(nodes=["only"], replication=3)
        assert ring.owners(0) == ("only",)

    def test_membership_errors(self):
        ring = HashRing(nodes=["a"])
        with pytest.raises(ClusterError):
            ring.add_node("a")
        with pytest.raises(ClusterError):
            ring.remove_node("zz")
        with pytest.raises(ClusterError):
            HashRing().owners(0)
        with pytest.raises(ClusterError):
            HashRing(replication=0)

    @pytest.mark.parametrize("nodes,vnodes,shards",
                             [(4, 64, 256), (8, 128, 256), (3, 64, 64)])
    def test_node_add_moves_about_k_over_n(self, nodes, vnodes, shards):
        """Adding one node re-homes ~K/(N+1) primaries, not a rehash."""
        ring = HashRing(nodes=[f"n{i}" for i in range(nodes)],
                        replication=2, vnodes=vnodes)
        before = ring.placement(shards)
        ring.add_node("new")
        after = ring.placement(shards)
        moved_primaries = sum(1 for shard in range(shards)
                              if after[shard][0] != before[shard][0])
        ideal = shards / (nodes + 1)
        assert 0 < moved_primaries <= 2 * ideal
        # Owner-set changes (what a rebalance must copy) stay near
        # replication * K / (N+1), far from the K of a full rehash.
        moved_sets = len(HashRing.moved_shards(before, after))
        assert moved_sets <= 2 * ring.replication * ideal

    @settings(max_examples=25, deadline=None)
    @given(num_nodes=st.integers(1, 8), replication=st.integers(1, 3),
           shards=st.integers(1, 64))
    def test_replica_count_property(self, num_nodes, replication, shards):
        ring = HashRing(nodes=[f"n{i}" for i in range(num_nodes)],
                        replication=replication, vnodes=16)
        want = min(replication, num_nodes)
        for shard in range(shards):
            owners = ring.owners(shard)
            assert len(owners) == len(set(owners)) == want

    @settings(max_examples=20, deadline=None)
    @given(num_nodes=st.integers(2, 8), victim=st.integers(0, 7))
    def test_remove_only_disturbs_owned_shards(self, num_nodes, victim):
        """Shards the removed node did not own keep identical owners."""
        victim = victim % num_nodes
        ring = HashRing(nodes=[f"n{i}" for i in range(num_nodes)],
                        replication=2, vnodes=16)
        before = ring.placement(64)
        ring.remove_node(f"n{victim}")
        after = ring.placement(64)
        for shard in range(64):
            if f"n{victim}" not in before[shard]:
                assert after[shard] == before[shard]

    def test_remove_then_readd_restores_placement(self):
        ring = HashRing(nodes=["a", "b", "c", "d"], replication=2)
        before = ring.placement(64)
        ring.remove_node("b")
        ring.add_node("b")
        assert ring.placement(64) == before


# ----------------------------------------------------------------------
# Coordinator: replication and rebalance
# ----------------------------------------------------------------------

def shard_bytes(cluster, shard):
    """Serialized packed state of one shard from each live holder."""
    blobs = {}
    for node_id, node in cluster.nodes.items():
        if node.alive and shard in node.shards:
            engine = node.shards[shard]
            blobs[node_id] = tuple(
                store.to_bytes()
                for chunk in sorted(engine.segments)
                for store in engine.segments[chunk].packed.values())
    return blobs


class TestCoordinator:
    @pytest.fixture()
    def cluster(self, data):
        cluster = make_cluster(nodes=4, shards=16, replication=2)
        ingest(cluster, data)
        return cluster

    def test_replicas_bit_identical(self, cluster):
        checked = 0
        for shard in range(cluster.num_shards):
            blobs = shard_bytes(cluster, shard)
            if len(blobs) > 1:
                checked += 1
                assert len(set(blobs.values())) == 1, shard
        assert checked > 0

    def test_every_shard_fully_replicated(self, cluster):
        for shard in range(cluster.num_shards):
            owners = cluster.live_owners(shard)
            assert len(owners) == 2
            holders = shard_bytes(cluster, shard)
            if holders:
                assert set(owners) <= set(holders)

    def test_num_cells_counts_each_shard_once(self, cluster, data):
        values, cells = data
        assert cluster.num_cells == len(np.unique(cells))

    def test_add_node_rebalances_minimally(self, cluster):
        held_before = sum(len(n.shards) for n in cluster.nodes.values())
        cluster.add_node("n4")
        report = cluster.last_rebalance
        assert report.copied_shards > 0
        assert report.bytes_copied > 0
        # Movement is bounded: the new node receives about
        # replication * K / N shards, nowhere near every shard.
        assert report.copied_shards <= cluster.num_shards
        assert len(cluster.nodes["n4"].shards) == report.copied_shards
        held_after = sum(len(n.shards) for n in cluster.nodes.values()
                        if n.alive)
        assert held_after == held_before  # replication count preserved
        for shard in range(cluster.num_shards):
            assert len(cluster.live_owners(shard)) == 2
            assert len(set(shard_bytes(cluster, shard).values())) <= 1

    def test_fail_node_with_repair_restores_replication(self, cluster):
        cluster.fail_node("n2", repair=True)
        for shard in range(cluster.num_shards):
            owners = cluster.live_owners(shard)
            assert len(owners) == 2
            assert all(cluster.nodes[node_id].alive for node_id in owners)
            holders = shard_bytes(cluster, shard)
            if holders:
                assert set(owners) <= set(holders)
                assert len(set(holders.values())) == 1

    def test_fail_without_repair_serves_degraded(self, cluster):
        cluster.fail_node("n2", repair=False)
        degraded = [shard for shard in range(cluster.num_shards)
                    if len(cluster.live_owners(shard)) < 2]
        assert degraded  # n2's shards lost one replica
        for shard in range(cluster.num_shards):
            assert len(cluster.live_owners(shard)) >= 1

    def test_graceful_remove(self, cluster):
        before = cluster.num_cells
        cluster.remove_node("n1")
        assert "n1" not in cluster.nodes
        assert cluster.num_cells == before
        for shard in range(cluster.num_shards):
            assert len(cluster.live_owners(shard)) == 2

    def test_remove_after_fail_with_repair_cleans_up(self, cluster):
        cluster.fail_node("n1", repair=True)  # leaves the ring here
        cluster.remove_node("n1")             # decommission the corpse
        assert "n1" not in cluster.nodes
        for shard in range(cluster.num_shards):
            assert len(cluster.live_owners(shard)) == 2

    def test_restore_node_resyncs_missed_ingests(self, data):
        """A revived node must not serve the state it crashed with."""
        values, cells = data
        cluster = make_cluster(nodes=3, shards=8, replication=2)
        half = values.size // 2
        timestamps = cluster.shard_ids([cells]).astype(float)
        cluster.ingest(timestamps[:half], [cells[:half]], values[:half])
        cluster.fail_node("n1", repair=False)
        cluster.ingest(timestamps[half:], [cells[half:]], values[half:])
        service = QueryService(cluster=cluster)
        spec = QuerySpec(kind="quantile", quantiles=(0.5, 0.99), measure="m",
                         report_moments=True)
        degraded = service.execute(spec)
        assert degraded.count == values.size
        cluster.restore_node("n1")
        restored = service.execute(spec)
        assert restored.moments == degraded.moments
        assert restored.estimates == degraded.estimates
        # The revived node's copies are bit-identical to its peers again.
        for shard in range(cluster.num_shards):
            blobs = shard_bytes(cluster, shard)
            assert len(set(blobs.values())) <= 1, shard

    def test_rebalance_never_aliases_replicas(self, cluster, data):
        """Replica stores must be distinct objects, not shared snapshots."""
        values, cells = data
        cluster.add_node("n4")
        cluster.add_node("n5")
        seen: dict[int, list] = {}
        for node in cluster.nodes.values():
            for shard, engine in node.shards.items():
                for segment in engine.segments.values():
                    for store in segment.packed.values():
                        assert all(store is not other
                                   for other in seen.get(shard, [])), shard
                        seen.setdefault(shard, []).append(store)
        # Ingesting more rows must land exactly once per replica: the
        # cluster-wide count stays one copy of the data per query.
        cluster.ingest(cluster.shard_ids([cells]).astype(float),
                       [cells], values)
        response = QueryService(cluster=cluster).execute(
            QuerySpec(kind="quantile", measure="m"))
        assert response.count == 2 * values.size

    def test_fail_last_live_node_is_rejected_without_side_effects(self):
        solo = make_cluster(nodes=1)
        with pytest.raises(ClusterError):
            solo.fail_node("n0")
        assert solo.nodes["n0"].alive  # guard must not half-apply

    def test_topology_errors(self, cluster):
        with pytest.raises(ClusterError):
            cluster.add_node("n0")
        with pytest.raises(ClusterError):
            cluster.fail_node("ghost")
        solo = make_cluster(nodes=1)
        with pytest.raises(ClusterError):
            solo.remove_node("n0")

    def test_ingest_requires_live_nodes(self):
        cluster = ClusterCoordinator(
            dimensions=("cell",),
            aggregators={"m": MomentsSketchAggregator(k=K)}, num_shards=4)
        with pytest.raises(ClusterError):
            cluster.ingest(np.zeros(2), [np.array([0, 1])], np.ones(2))


# ----------------------------------------------------------------------
# Broker + unified-API backend
# ----------------------------------------------------------------------

class TestClusterServing:
    @pytest.fixture(scope="class")
    def setup(self, data):
        values, cells = data
        cluster = make_cluster(nodes=4, shards=16, replication=2)
        timestamps = ingest(cluster, data)
        reference = DruidEngine(
            dimensions=("cell",),
            aggregators={"m": MomentsSketchAggregator(k=K),
                         "total": DoubleSumAggregator()},
            granularity=1.0, processing_threads=1)
        reference.ingest(timestamps, [cells], values)
        backend = as_backend(cluster)
        service = QueryService(cluster=backend, druid=reference)
        return cluster, backend, service

    def test_as_backend_adapts_coordinator_and_broker(self, data):
        cluster = make_cluster(nodes=2, shards=4)
        assert isinstance(as_backend(cluster), ClusterBackend)
        assert isinstance(as_backend(ClusterBroker(cluster)), ClusterBackend)

    def test_quantile_matches_druid(self, setup):
        _, _, service = setup
        spec = QuerySpec(kind="quantile", quantiles=(0.5, 0.99),
                         measure="m", report_moments=True)
        ours = service.execute(spec, backend="cluster")
        theirs = service.execute(spec, backend="druid")
        assert ours.moments == theirs.moments
        assert ours.estimates == theirs.estimates
        assert ours.route == "packed"
        assert ours.cells_scanned == theirs.cells_scanned

    def test_point_query_routes_to_one_shard(self, setup):
        cluster, backend, service = setup
        spec = QuerySpec(kind="quantile", measure="m", filters={"cell": 7})
        response = service.execute(spec, backend="cluster")
        profile = backend.last_profile
        assert profile.shards_scanned == 1
        assert profile.nodes_queried == 1
        assert response.cells_scanned == 1

    def test_point_query_with_float_typed_filter(self, setup):
        # Cells were ingested under int keys; a numerically-equal float
        # filter (e.g. from --spec JSON) must route to the same shard
        # and return the same answer as the druid backend.
        _, _, service = setup
        spec = QuerySpec(kind="quantile", measure="m", filters={"cell": 7.0})
        assert (service.execute(spec, backend="cluster").estimates
                == service.execute(spec, backend="druid").estimates)

    def test_filters_and_interval(self, setup):
        cluster, _, service = setup
        shard = cluster.shard_of_key((3,))
        spec = QuerySpec(kind="quantile", measure="m", filters={"cell": 3},
                         interval=(float(shard), float(shard)))
        ours = service.execute(spec, backend="cluster")
        theirs = service.execute(spec, backend="druid")
        assert ours.estimates == theirs.estimates
        assert ours.count == 200.0

    def test_no_match_raises(self, setup):
        _, _, service = setup
        spec = QuerySpec(kind="quantile", measure="m",
                         filters={"cell": 10_000})
        with pytest.raises(QueryError):
            service.execute(spec, backend="cluster")

    def test_group_by_and_top_n_match_druid(self, setup):
        _, _, service = setup
        group = QuerySpec(kind="group_by", quantiles=(0.9,), measure="m",
                          group_dimension="cell")
        ours = service.execute(group, backend="cluster")
        theirs = service.execute(group, backend="druid")
        assert ours.groups == theirs.groups
        top = QuerySpec(kind="top_n", quantiles=(0.9,), measure="m",
                        group_dimension="cell", n=5)
        assert (service.execute(top, backend="cluster").top
                == service.execute(top, backend="druid").top)

    def test_group_interval_rejected(self, setup):
        _, _, service = setup
        spec = QuerySpec(kind="group_by", measure="m",
                         group_dimension="cell", interval=(0.0, 1.0))
        with pytest.raises(QueryError):
            service.execute(spec, backend="cluster")

    def test_threshold_count_matches_druid(self, setup, data):
        values, _ = data
        t = float(np.quantile(values, 0.95))
        spec = QuerySpec(kind="threshold_count", quantiles=(0.99,),
                         thresholds=(t,), measure="m",
                         group_dimension="cell")
        _, _, service = setup
        assert (service.execute(spec, backend="cluster").value
                == service.execute(spec, backend="druid").value)

    def test_sum_aggregator_takes_loop_route(self, setup, data):
        values, _ = data
        _, _, service = setup
        spec = QuerySpec(kind="quantile", measure="total")
        response = service.execute(spec, backend="cluster")
        assert response.route == "loop"
        assert response.value == pytest.approx(float(values.sum()))

    def test_execute_batch_shares_cluster_scans(self, setup):
        cluster, _, _ = setup
        backend = ClusterBackend(cluster)  # fresh broker: clean counter
        service = QueryService(cluster=backend)
        specs = [QuerySpec(kind="quantile", quantiles=(q,), measure="m")
                 for q in (0.1, 0.5, 0.9, 0.99)]
        responses = service.execute_batch(specs)
        assert backend.broker.queries_served == 1
        assert [r.shared_scan for r in responses] == [False, True, True, True]
        report = service.last_batch_report
        assert report.distinct_scans == 1

    def test_failover_keeps_answers_bit_exact(self, data):
        values, cells = data
        cluster = make_cluster(nodes=4, shards=16, replication=2)
        ingest(cluster, data)
        service = QueryService(cluster=cluster)
        spec = QuerySpec(kind="quantile", quantiles=(0.5, 0.99), measure="m",
                         report_moments=True)
        before = service.execute(spec)
        cluster.fail_node("n0", repair=False)
        degraded = service.execute(spec)
        assert degraded.moments == before.moments
        assert degraded.estimates == before.estimates
        # Repair the first loss, then survive a second, unrelated one.
        cluster.fail_node("n0", repair=True)
        cluster.fail_node("n1", repair=True)
        repaired = service.execute(spec)
        assert repaired.moments == before.moments
        assert repaired.estimates == before.estimates

    def test_scale_out_keeps_answers_bit_exact(self, data):
        cluster = make_cluster(nodes=2, shards=16, replication=2)
        ingest(cluster, data)
        service = QueryService(cluster=cluster)
        spec = QuerySpec(kind="quantile", quantiles=(0.5,), measure="m",
                         report_moments=True)
        before = service.execute(spec)
        for new in ("n2", "n3", "n4"):
            cluster.add_node(new)
            grown = service.execute(spec)
            assert grown.moments == before.moments, new
            assert grown.estimates == before.estimates, new

    def test_all_replicas_down_is_unroutable(self, data):
        cluster = make_cluster(nodes=2, shards=8, replication=2)
        ingest(cluster, data)
        cluster.nodes["n0"].fail()
        cluster.nodes["n1"].fail()
        with pytest.raises(ClusterError):
            QueryService(cluster=cluster).execute(
                QuerySpec(kind="quantile", measure="m"))

    def test_measure_selection_defaults_to_moments(self, setup):
        _, _, service = setup
        response = service.execute(QuerySpec(kind="quantile"),
                                   backend="cluster")
        assert response.route == "packed"

    def test_profile_reports_small_partials(self, setup):
        cluster, backend, service = setup
        service.execute(QuerySpec(kind="quantile", measure="m"),
                        backend="cluster")
        profile = backend.last_profile
        assert profile.shards_scanned > 0
        # ~200 bytes per shard partial at k=8 (the paper's selling point).
        assert profile.partial_bytes < 300 * profile.shards_scanned
        assert profile.cells_scanned == cluster.num_cells
