"""Per-summary behaviour tests beyond the common contract."""

import numpy as np
import pytest

from repro.summaries import (
    EquiWidthHistogramSummary,
    ExactSummary,
    GKSummary,
    Merge12Summary,
    MomentsSummary,
    RandomSummary,
    SamplingSummary,
    StreamingHistogramSummary,
    TDigestSummary,
)


class TestGK:
    def test_epsilon_guarantee_pointwise(self):
        rng = np.random.default_rng(0)
        data = rng.normal(0, 1, 30_000)
        gk = GKSummary.from_data(data, epsilon=1 / 100)
        sorted_data = np.sort(data)
        for phi in np.linspace(0.05, 0.95, 10):
            rank = np.searchsorted(sorted_data, gk.quantile(phi), side="left")
            assert abs(rank - phi * data.size) <= 2 * data.size / 100 + 1

    def test_size_grows_under_heterogeneous_merging(self):
        """The paper's point: GK is not strictly mergeable (App. D.4)."""
        rng = np.random.default_rng(1)
        solo = GKSummary.from_data(rng.normal(0, 1, 10_000), epsilon=1 / 50)
        parts = [GKSummary.from_data(rng.normal(loc, 1, 200), epsilon=1 / 50)
                 for loc in rng.uniform(-50, 50, 50)]
        merged = parts[0]
        for part in parts[1:]:
            merged = merged.merge(part)
        assert merged.tuple_count > solo.tuple_count

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            GKSummary(epsilon=0.7)

    def test_invariant_holds_after_mixed_workload(self):
        rng = np.random.default_rng(2)
        gk = GKSummary(epsilon=1 / 40)
        for _ in range(5):
            gk.accumulate(rng.exponential(1, 1000))
            gk.merge(GKSummary.from_data(rng.exponential(2, 500), epsilon=1 / 40))
        gk._flush()
        budget = 2 * gk.epsilon * gk.count
        assert np.all(gk._g + gk._delta <= budget + 1e-6)
        assert gk._g.sum() == gk.count


class TestTDigest:
    def test_centroid_count_bounded_by_delta(self):
        rng = np.random.default_rng(3)
        digest = TDigestSummary.from_data(rng.normal(0, 1, 50_000), delta=100.0)
        assert digest.centroid_count <= 120  # delta plus buffering slack

    def test_tail_quantiles_high_resolution(self):
        rng = np.random.default_rng(4)
        data = rng.exponential(1, 100_000)
        digest = TDigestSummary.from_data(data, delta=100.0)
        sorted_data = np.sort(data)
        for phi in (0.99, 0.999):
            rank = np.searchsorted(sorted_data, digest.quantile(phi), side="left")
            assert abs(rank / data.size - phi) < 0.002

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            TDigestSummary(delta=0.5)

    def test_weights_conserved_through_merges(self):
        rng = np.random.default_rng(5)
        parts = [TDigestSummary.from_data(rng.normal(i, 1, 500), delta=50.0)
                 for i in range(10)]
        merged = parts[0]
        for part in parts[1:]:
            merged = merged.merge(part)
        merged._flush()
        assert float(merged._weights.sum()) == pytest.approx(5000.0)


class TestMerge12:
    def test_total_weight_conserved(self):
        rng = np.random.default_rng(6)
        summary = Merge12Summary.from_data(rng.normal(0, 1, 12_345), k=16, seed=0)
        values, weights = summary._weighted_items()
        assert float(weights.sum()) == pytest.approx(12_345.0)

    def test_level_buffers_have_exact_size(self):
        rng = np.random.default_rng(7)
        summary = Merge12Summary.from_data(rng.normal(0, 1, 10_000), k=16, seed=0)
        for buffer in summary._levels:
            if buffer is not None:
                assert buffer.size == 16

    def test_merge_preserves_weight(self):
        rng = np.random.default_rng(8)
        a = Merge12Summary.from_data(rng.normal(0, 1, 3_000), k=8, seed=1)
        b = Merge12Summary.from_data(rng.normal(5, 1, 4_000), k=8, seed=2)
        a.merge(b)
        _, weights = a._weighted_items()
        assert float(weights.sum()) == pytest.approx(7_000.0)

    def test_mismatched_k_rejected(self):
        with pytest.raises(ValueError):
            Merge12Summary(k=8).merge(Merge12Summary(k=16))


class TestRandomW:
    def test_weight_approximately_conserved(self):
        # Randomized halving conserves weight in expectation; check 10%.
        rng = np.random.default_rng(9)
        parts = [RandomSummary.from_data(rng.normal(0, 1, 500),
                                         buffer_size=128, seed=i)
                 for i in range(40)]
        merged = parts[0]
        for part in parts[1:]:
            merged = merged.merge(part)
        values, weights = merged._weighted_items()
        assert float(weights.sum()) == pytest.approx(20_000, rel=0.15)

    def test_bounded_storage_under_merging(self):
        rng = np.random.default_rng(10)
        merged = RandomSummary.from_data(rng.normal(0, 1, 500), buffer_size=64, seed=0)
        for i in range(100):
            merged.merge(RandomSummary.from_data(rng.normal(0, 1, 500),
                                                 buffer_size=64, seed=i + 1))
        stored = sum(buf.size for _, buf in merged._buffers) + len(merged._active)
        assert stored <= (merged.num_buffers + 1) * merged.buffer_size


class TestSampling:
    def test_reservoir_capacity_respected(self):
        rng = np.random.default_rng(11)
        sample = SamplingSummary.from_data(rng.normal(0, 1, 50_000), capacity=100, seed=0)
        assert sample._reservoir.size == 100
        assert sample.count == 50_000

    def test_reservoir_unbiased_mean(self):
        rng = np.random.default_rng(12)
        data = rng.uniform(0, 1, 20_000)
        means = []
        for seed in range(30):
            sample = SamplingSummary.from_data(data, capacity=500, seed=seed)
            means.append(float(sample._reservoir.mean()))
        assert np.mean(means) == pytest.approx(0.5, abs=0.01)

    def test_merge_weighting_by_count(self):
        rng = np.random.default_rng(13)
        big = SamplingSummary.from_data(np.zeros(90_000), capacity=1000, seed=0)
        small = SamplingSummary.from_data(np.ones(10_000), capacity=1000, seed=1)
        big.merge(small)
        fraction_ones = float(big._reservoir.mean())
        assert fraction_ones == pytest.approx(0.1, abs=0.05)


class TestStreamingHistogram:
    def test_bin_budget_enforced(self):
        rng = np.random.default_rng(14)
        hist = StreamingHistogramSummary.from_data(rng.normal(0, 1, 20_000),
                                                   max_bins=50)
        assert hist.bin_count <= 50

    def test_mass_conserved(self):
        rng = np.random.default_rng(15)
        hist = StreamingHistogramSummary.from_data(rng.normal(0, 1, 7_777),
                                                   max_bins=64)
        hist._flush()
        assert float(hist._masses.sum()) == pytest.approx(7_777.0)

    def test_duplicate_heavy_data(self):
        hist = StreamingHistogramSummary.from_data([5.0] * 1000 + [7.0] * 500,
                                                   max_bins=10)
        assert hist.bin_count == 2
        assert hist.quantile(0.3) == pytest.approx(5.0, abs=0.5)


class TestEWHist:
    def test_power_of_two_width(self):
        rng = np.random.default_rng(16)
        hist = EquiWidthHistogramSummary.from_data(rng.uniform(0, 100, 5_000),
                                                   max_bins=64)
        assert hist.width == 2.0 ** hist._exponent

    def test_counts_conserved_under_range_growth(self):
        hist = EquiWidthHistogramSummary(max_bins=16)
        hist.accumulate(np.linspace(0, 1, 1000))
        hist.accumulate(np.linspace(1000, 1001, 1000))  # forces coarsening
        assert float(hist._counts.sum()) == pytest.approx(2000.0)
        assert hist.bin_count <= 16

    def test_merge_is_exact_on_counts(self):
        rng = np.random.default_rng(17)
        data = rng.uniform(0, 50, 4_000)
        whole = EquiWidthHistogramSummary.from_data(data, max_bins=32)
        half_a = EquiWidthHistogramSummary.from_data(data[:2_000], max_bins=32)
        half_b = EquiWidthHistogramSummary.from_data(data[2_000:], max_bins=32)
        half_a.merge(half_b)
        assert float(half_a._counts.sum()) == pytest.approx(4000.0)
        assert half_a.count == whole.count

    def test_uniform_data_accurate(self):
        rng = np.random.default_rng(18)
        data = rng.uniform(0, 1, 50_000)
        hist = EquiWidthHistogramSummary.from_data(data, max_bins=100)
        assert hist.quantile(0.5) == pytest.approx(0.5, abs=0.02)


class TestExact:
    def test_exact_rank_semantics(self):
        data = np.arange(1000, dtype=float)
        exact = ExactSummary.from_data(data)
        assert exact.quantile(0.5) == 500.0
        assert exact.rank(500.0) == 500
        assert exact.quantile_error(504.0, 0.5) == pytest.approx(0.004)


class TestMomentsSummaryAdapter:
    def test_estimator_cache_invalidation(self):
        rng = np.random.default_rng(19)
        summary = MomentsSummary.from_data(rng.normal(0, 1, 5_000), k=8)
        first = summary.quantile(0.5)
        assert summary._estimator is not None
        summary.accumulate(np.full(5_000, 100.0))
        assert summary._estimator is None  # mutation dropped the cache
        second = summary.quantile(0.5)
        assert second != first

    def test_paper_headline_size(self):
        assert MomentsSummary(k=10).size_bytes() < 200

    def test_discrete_data_degrades_not_raises(self):
        summary = MomentsSummary.from_data([0.0] * 900 + [1.0] * 100, k=10)
        q = summary.quantile(0.95)
        assert q in (0.0, 1.0)
