"""Tests for the bound-pruned Druid topN-by-quantile query."""

import numpy as np
import pytest

from repro.core.errors import QueryError
from repro.druid import DruidEngine, registry, top_n_by_quantile


@pytest.fixture(scope="module")
def engine():
    rng = np.random.default_rng(0)
    n = 40_000
    # Ten app versions with clearly separated tail latencies.
    version = rng.integers(0, 10, n)
    region = rng.choice(["na", "eu"], n)
    scale = 1.0 + version * 2.0          # version 9 is the slowest
    values = rng.lognormal(2.0, 0.5, n) * scale
    engine = DruidEngine(("version", "region"),
                         registry(histogram_bins=(100,)),
                         granularity=3600.0)
    engine.ingest(rng.uniform(0, 6 * 3600, n), [version, region], values)
    engine._truth = (version, region, values)  # type: ignore[attr-defined]
    return engine


def brute_force_top(engine, n_top, phi):
    version, region, values = engine._truth
    scores = {v: float(np.quantile(values[version == v], phi))
              for v in np.unique(version)}
    ranked = sorted(scores, key=scores.get, reverse=True)
    return ranked[:n_top]


class TestTopN:
    @pytest.mark.parametrize("n_top", [1, 3, 5])
    def test_matches_brute_force_ranking(self, engine, n_top):
        result = top_n_by_quantile(engine, "momentsSketch@10", "version",
                                   n=n_top, q=0.99)
        got = [value for value, _ in result]
        expected = brute_force_top(engine, n_top, 0.99)
        assert got == expected

    def test_scores_are_descending_quantiles(self, engine):
        result = top_n_by_quantile(engine, "momentsSketch@10", "version",
                                   n=4, q=0.9)
        scores = [score for _, score in result]
        assert scores == sorted(scores, reverse=True)
        version, _, values = engine._truth
        for value, score in result:
            truth = np.quantile(values[version == value], 0.9)
            assert score == pytest.approx(truth, rel=0.15)

    def test_filtered_topn(self, engine):
        version, region, values = engine._truth
        result = top_n_by_quantile(engine, "momentsSketch@10", "version",
                                   n=2, q=0.99, filters={"region": "na"})
        mask = region == "na"
        scores = {v: float(np.quantile(values[mask & (version == v)], 0.99))
                  for v in np.unique(version)}
        expected = sorted(scores, key=scores.get, reverse=True)[:2]
        assert [value for value, _ in result] == expected

    def test_works_for_non_moments_aggregator(self, engine):
        # No pruning path for histograms: estimates everything, same answer.
        result = top_n_by_quantile(engine, "S-Hist@100", "version",
                                   n=3, q=0.99)
        assert [value for value, _ in result] == brute_force_top(engine, 3, 0.99)

    def test_n_larger_than_groups_returns_all(self, engine):
        result = top_n_by_quantile(engine, "momentsSketch@10", "version",
                                   n=50, q=0.5)
        assert len(result) == 10

    def test_validation(self, engine):
        with pytest.raises(QueryError):
            top_n_by_quantile(engine, "momentsSketch@10", "version", n=0)
        with pytest.raises(QueryError):
            top_n_by_quantile(engine, "momentsSketch@10", "flavor", n=1)
        with pytest.raises(QueryError):
            top_n_by_quantile(engine, "nope", "version", n=1)
