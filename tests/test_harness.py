"""End-to-end workload harness tests.

Covers the full loop — spec validation and JSON round trips, a real
(unpaced) experiment run with oracle grading and trajectory output, the
schema of the emitted record, determinism of the workload side of the
record, the QueryTimings regression net (every QueryService route must
fill ``solve_calls``/``solve_route``), and the ``repro harness run``
CLI.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.api import (QueryService, QuerySpec, QueryTimings, WindowSpec,
                       qkey)
from repro.core.errors import HarnessError
from repro.datacube import CubeSchema, DataCube
from repro.harness import (ExperimentSpec, SCHEMA_VERSION, append_trajectory,
                           generate_schedule, load_trajectory, run_experiment)
from repro.summaries.moments_summary import MomentsSummary
from repro.window import build_panes

REPO = Path(__file__).resolve().parent.parent

SMALL = dict(name="unit", dataset="milan", rows=3000, cells=12,
             backends=("cube", "cluster"), k=10, duration_seconds=2.0,
             target_qps=12.0, ingest_fraction=0.25, ingest_batch_rows=250,
             paced=False, seed=3)


class TestExperimentSpec:
    def test_json_round_trip(self):
        spec = ExperimentSpec(**SMALL)
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_rejects_unknown_fields(self):
        with pytest.raises(HarnessError):
            ExperimentSpec.from_dict({**SMALL, "frobnicate": 1})

    @pytest.mark.parametrize("bad", [
        {"backends": ("cube", "mongodb")},
        {"query_mix": (("quantile", 0.5), ("join", 0.5))},
        {"duration_seconds": 0.0},
        {"target_qps": -1.0},
        {"ingest_fraction": 1.5},
        {"burstiness": 1.0},
        {"quantiles": ()},
        {"epsilon": 0.0},
        {"rows": 0},
    ])
    def test_rejects_invalid_values(self, bad):
        with pytest.raises(HarnessError):
            ExperimentSpec(**{**SMALL, **bad})

    def test_num_events_is_qps_times_duration(self):
        spec = ExperimentSpec(**{**SMALL, "duration_seconds": 5.0,
                                 "target_qps": 20.0})
        assert spec.num_events == 100

    def test_mix_weights_normalized(self):
        spec = ExperimentSpec(**{**SMALL,
                                 "query_mix": (("quantile", 2.0),
                                               ("group_by", 2.0))})
        kinds, weights = spec.mix_weights()
        assert kinds == ("quantile", "group_by")
        assert weights == (0.5, 0.5)


class TestRunExperiment:
    @pytest.fixture(scope="class")
    def record(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("bench") / "BENCH_harness.json"
        record = run_experiment(ExperimentSpec(**SMALL),
                                trajectory_path=path,
                                fail_on_violation=True)
        return record, path

    def test_schema_and_envelope(self, record):
        record, path = record
        assert record["schema"] == SCHEMA_VERSION
        trajectory = load_trajectory(path)
        assert trajectory["schema"] == SCHEMA_VERSION
        assert trajectory["runs"] == [record]
        # The file is plain JSON a later analysis script can load.
        assert json.loads(path.read_text())["runs"][0]["spec"]["name"] == \
            "unit"

    def test_workload_accounting(self, record):
        record, _ = record
        workload = record["workload"]
        schedule = generate_schedule(ExperimentSpec(**SMALL))
        assert workload["events"] == len(schedule)
        assert workload["queries"] + workload["ingest_flushes"] \
            == workload["events"]
        assert workload["rows_ingested"] == SMALL["rows"] \
            + workload["ingest_flushes"] * SMALL["ingest_batch_rows"]
        assert workload["elapsed_seconds"] > 0
        assert workload["qps_achieved"] > 0

    def test_latency_covers_every_backend_and_kind(self, record):
        record, _ = record
        for backend in SMALL["backends"]:
            kinds = record["latency"][backend]
            assert "ingest" in kinds and "quantile" in kinds
            for kind, summary in kinds.items():
                if kind == "phase_totals":
                    assert summary["solve_calls"] > 0
                    continue
                assert summary["count"] > 0
                assert (summary["p50_seconds"] <= summary["p95_seconds"]
                        <= summary["p99_seconds"])

    def test_resources_sampled(self, record):
        record, _ = record
        assert record["resources"]["rss_max_bytes"] > 1_000_000

    def test_accuracy_graded_with_zero_violations(self, record):
        record, _ = record
        accuracy = record["accuracy"]
        assert accuracy["epsilon"] == 0.05
        for backend in SMALL["backends"]:
            graded = accuracy[backend]
            assert graded["checked"] > 0
            assert graded["violations"] == 0
            assert graded["max_rank_error"] <= 0.05
            assert len(graded["worst"]) <= 10
            # worst list is sorted most-wrong first
            errors = [w["rank_error"] for w in graded["worst"]]
            assert errors == sorted(errors, reverse=True)

    def test_cube_and_cluster_agree_bit_exactly(self, record):
        record, _ = record
        agreement = record["agreement"]["cluster"]
        assert agreement["queries"] > 0
        assert agreement["exact_matches"] == agreement["queries"]

    def test_workload_portion_deterministic(self, record, tmp_path):
        record, _ = record
        again = run_experiment(ExperimentSpec(**SMALL))
        assert again["workload"]["events"] == record["workload"]["events"]
        assert again["workload"]["queries"] == record["workload"]["queries"]
        assert again["accuracy"] == record["accuracy"]
        assert again["agreement"] == record["agreement"]

    def test_spec_coercion_from_dict_and_json(self, record):
        # run_experiment accepts the spec in any of its three forms.
        no_oracle = {**SMALL, "rows": 600, "duration_seconds": 0.5,
                     "target_qps": 8.0, "backends": ("cube",),
                     "oracle": False}
        from_dict = run_experiment(no_oracle)
        from_json = run_experiment(json.dumps({**no_oracle,
                                               "backends": ["cube"]}))
        assert "accuracy" not in from_dict
        assert from_dict["workload"] == from_json["workload"] \
            | {"elapsed_seconds": from_dict["workload"]["elapsed_seconds"],
               "qps_achieved": from_dict["workload"]["qps_achieved"]}

    def test_fail_on_violation_raises(self, tmp_path):
        # An absurdly tight ε cannot hold; the run must record, then
        # raise.
        path = tmp_path / "BENCH_harness.json"
        with pytest.raises(HarnessError, match="violations"):
            run_experiment(ExperimentSpec(**{**SMALL, "epsilon": 1e-9}),
                           trajectory_path=path, fail_on_violation=True)
        assert len(load_trajectory(path)["runs"]) == 1


class TestTrajectoryFile:
    def test_missing_file_is_empty_envelope(self, tmp_path):
        assert load_trajectory(tmp_path / "nope.json") \
            == {"schema": SCHEMA_VERSION, "runs": []}

    def test_append_accumulates(self, tmp_path):
        path = tmp_path / "t.json"
        for i in range(3):
            append_trajectory(path, {"schema": SCHEMA_VERSION, "i": i})
        assert [run["i"] for run in load_trajectory(path)["runs"]] \
            == [0, 1, 2]

    def test_corrupt_file_fails_loudly(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text("not json{")
        with pytest.raises(HarnessError):
            load_trajectory(path)

    def test_wrong_schema_rejected(self, tmp_path):
        with pytest.raises(HarnessError):
            append_trajectory(tmp_path / "t.json", {"schema": "bogus/9"})


class TestQueryTimingsAlwaysFilled:
    """Satellite regression: every QueryService route fills the solve
    accounting — ``solve_calls`` and ``solve_route`` — not just the
    batched group paths."""

    @pytest.fixture(scope="class")
    def service(self):
        rng = np.random.default_rng(7)
        values = rng.lognormal(1.0, 1.0, 4000)
        cells = np.arange(values.size) // 200
        cube = DataCube(CubeSchema(("cell",)),
                        lambda: MomentsSummary(k=10))
        cube.ingest([cells], values)
        panes = build_panes(values, pane_size=200, k=10)
        return QueryService(cube=cube, window=panes), float(
            np.quantile(values, 0.9))

    @pytest.mark.parametrize("batched", [True, False],
                             ids=["batched", "scalar"])
    def test_every_kind_reports_solve_route(self, service, batched):
        service_obj, t = service
        service_obj.batched = batched
        specs = {
            "quantile": QuerySpec(kind="quantile", quantiles=(0.5, 0.99)),
            "cdf": QuerySpec(kind="cdf", thresholds=(t, t * 2)),
            "group_by": QuerySpec(kind="group_by", quantiles=(0.5,),
                                  group_dimension="cell"),
            "top_n": QuerySpec(kind="top_n", quantiles=(0.9,),
                               group_dimension="cell", n=3),
            "threshold_count": QuerySpec(kind="threshold_count",
                                         quantiles=(0.9,), thresholds=(t,),
                                         group_dimension="cell"),
        }
        for kind, spec in specs.items():
            response = service_obj.execute(spec, backend="cube")
            timings = response.timings
            assert timings.solve_route, (kind, batched)
            assert timings.solve_calls > 0, (kind, batched)

    def test_scalar_quantile_route(self, service):
        service_obj, _ = service
        response = service_obj.execute(
            QuerySpec(kind="quantile", quantiles=(0.5,)), backend="cube")
        assert response.timings.solve_route == "scalar"
        assert response.timings.solve_calls == 1

    def test_cdf_bounds_route(self, service):
        service_obj, t = service
        response = service_obj.execute(
            QuerySpec(kind="cdf", thresholds=(t, t * 2, t * 3)),
            backend="cube")
        assert response.timings.solve_route == "bounds"
        assert response.timings.solve_calls == 3

    def test_windowed_route(self, service):
        service_obj, t = service
        response = service_obj.execute(
            QuerySpec(kind="windowed", quantiles=(0.99,), thresholds=(t,),
                      window=WindowSpec(window_panes=4)), backend="window")
        assert response.timings.solve_route == "window"
        assert response.timings.solve_calls >= 1

    def test_timings_default_is_explicitly_unset(self):
        # The harness's in-loop check relies on the default being falsy.
        assert not QueryTimings().solve_route
        assert QueryTimings().solve_calls == 0


class TestHarnessCli:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *argv],
            capture_output=True, text=True, cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"})

    def test_run_with_spec_file(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(ExperimentSpec(**SMALL).to_json())
        out_path = tmp_path / "BENCH_harness.json"
        proc = self._run("harness", "run", "--spec", str(spec_path),
                         "--out", str(out_path),
                         "--duration", "1.0", "--qps", "10")
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["trajectory"] == str(out_path)
        trajectory = json.loads(out_path.read_text())
        assert trajectory["schema"] == SCHEMA_VERSION
        assert trajectory["runs"][0]["spec"]["duration_seconds"] == 1.0

    def test_run_with_inline_spec_no_out(self):
        inline = json.dumps({**SMALL, "backends": ["cube"],
                             "duration_seconds": 0.5, "target_qps": 8.0,
                             "rows": 600})
        proc = self._run("harness", "run", "--spec", inline, "--no-out")
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert "trajectory" not in payload
        assert payload["workload"]["queries"] > 0

    def test_check_flag_fails_on_violation(self):
        inline = json.dumps({**SMALL, "duration_seconds": 0.5,
                             "target_qps": 8.0, "rows": 600,
                             "epsilon": 1e-9})
        proc = self._run("harness", "run", "--spec", inline, "--no-out",
                         "--check")
        assert proc.returncode != 0
        # The CLI surfaces errors as a structured JSON document.
        assert "violation" in json.loads(proc.stdout)["error"]


class TestStorageKnob:
    """The tiered backend inside the harness: knob validation, lossless
    agreement, cold-tier grading, and the record's storage section."""

    def test_storage_knob_round_trip(self):
        spec = ExperimentSpec(
            backends=("packed", "tiered"),
            storage={"hot_budget_bytes": 2048, "cold_fraction": 0.5})
        assert spec.storage_dict() == {"hot_budget_bytes": 2048,
                                       "cold_fraction": 0.5}
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_storage_knob_validation(self):
        with pytest.raises(HarnessError, match="unknown storage keys"):
            ExperimentSpec(backends=("tiered",), storage={"bogus": 1})
        with pytest.raises(HarnessError, match="cold_fraction"):
            ExperimentSpec(backends=("tiered",),
                           storage={"cold_fraction": 1.5})
        with pytest.raises(HarnessError, match="hot_budget_bytes"):
            ExperimentSpec(backends=("tiered",),
                           storage={"hot_budget_bytes": 0})
        with pytest.raises(HarnessError, match="tiered"):
            ExperimentSpec(backends=("cube",),
                           storage={"hot_budget_bytes": 2048})

    @pytest.fixture(scope="class")
    def tiered_record(self):
        spec = ExperimentSpec(
            name="tiered-unit", dataset="milan", rows=12_000, cells=16,
            backends=("packed", "tiered"), duration_seconds=1.0,
            target_qps=20.0, ingest_fraction=0.25, ingest_batch_rows=250,
            seed=3, storage={"hot_budget_bytes": 1024})
        return run_experiment(spec, fail_on_violation=True)

    def test_lossless_tiered_agrees_bit_exactly(self, tiered_record):
        agreement = tiered_record["agreement"]["tiered"]
        assert agreement["queries"] > 0
        assert agreement["exact_matches"] == agreement["queries"]

    def test_record_gains_storage_section(self, tiered_record):
        storage = tiered_record["storage"]
        assert storage["seals"] >= 1 and storage["segments"] >= 1
        assert storage["disk_bytes"] > 0 and storage["ram_bytes"] > 0
        assert storage["hot_budget_bytes"] == 1024
        assert storage["knobs"] == {"hot_budget_bytes": 1024}

    def test_cold_fraction_leaves_agreement_but_passes_epsilon(self):
        spec = ExperimentSpec(
            name="tiered-cold-unit", dataset="milan", rows=12_000,
            cells=16, backends=("packed", "tiered"), duration_seconds=1.0,
            target_qps=20.0, ingest_fraction=0.25, ingest_batch_rows=250,
            seed=3, storage={"hot_budget_bytes": 1024,
                             "cold_fraction": 1.0})
        record = run_experiment(spec, fail_on_violation=True)
        assert "tiered" not in record["agreement"]
        assert record["storage"]["cold_bytes"] > 0
        assert record["accuracy"]["tiered"]["violations"] == 0

    def test_cold_reference_backend_rejected(self):
        spec = ExperimentSpec(
            backends=("tiered", "packed"), rows=2000, cells=8,
            duration_seconds=0.5, target_qps=10.0,
            storage={"cold_fraction": 0.5})
        with pytest.raises(HarnessError, match="reference"):
            run_experiment(spec)
