"""Property tests for the harness traffic generator.

The open-loop schedule is the experiment's identity: these tests pin
down that it is a pure function of the spec (same seed ⇒ identical
events), that the Zipf skew knob actually orders cell hit frequencies,
and that the arrival envelope matches the requested QPS × duration.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.harness import ExperimentSpec, generate_schedule, zipf_weights
from repro.harness.traffic import arrival_offsets, assign_cells


def _spec(**overrides) -> ExperimentSpec:
    base = dict(rows=100, cells=16, duration_seconds=10.0, target_qps=50.0,
                seed=3)
    base.update(overrides)
    return ExperimentSpec(**base)


class TestDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1),
           burstiness=st.floats(0.0, 0.9),
           zipf_s=st.floats(0.0, 3.0),
           ingest_fraction=st.floats(0.0, 0.8))
    def test_same_seed_identical_schedule(self, seed, burstiness, zipf_s,
                                          ingest_fraction):
        spec = _spec(seed=seed, burstiness=burstiness, zipf_s=zipf_s,
                     ingest_fraction=ingest_fraction)
        assert generate_schedule(spec) == generate_schedule(spec)

    def test_different_seeds_differ(self):
        a = generate_schedule(_spec(seed=1))
        b = generate_schedule(_spec(seed=2))
        assert a != b

    def test_events_are_time_ordered_and_indexed(self):
        events = generate_schedule(_spec())
        offsets = [event.at for event in events]
        assert offsets == sorted(offsets)
        assert [event.index for event in events] == list(range(len(events)))
        assert all(0.0 <= event.at < 10.0 for event in events)


class TestZipfSkew:
    def test_weights_are_normalized_and_monotone(self):
        weights = zipf_weights(32, 1.2)
        np.testing.assert_allclose(weights.sum(), 1.0)
        assert np.all(np.diff(weights) < 0)

    def test_zero_skew_is_uniform(self):
        np.testing.assert_allclose(zipf_weights(10, 0.0), np.full(10, 0.1))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), s=st.floats(0.8, 2.5))
    def test_skew_orders_cell_hit_frequencies(self, seed, s):
        spec = _spec(seed=seed, zipf_s=s, cells=8, target_qps=300.0,
                     ingest_fraction=0.0,
                     query_mix=(("quantile", 1.0),))
        hits = np.zeros(spec.cells)
        for event in generate_schedule(spec):
            hits[event.cell] += 1
        # Rank 0 is strictly hottest and the hot half dominates the
        # cold half — the ordering the skew parameter promises.
        assert hits[0] == hits.max()
        assert hits[: spec.cells // 2].sum() > hits[spec.cells // 2:].sum()

    def test_larger_s_concentrates_more(self):
        def top_share(s):
            spec = _spec(zipf_s=s, cells=16, target_qps=500.0,
                         ingest_fraction=0.0, query_mix=(("quantile", 1.0),))
            hits = np.zeros(spec.cells)
            for event in generate_schedule(spec):
                hits[event.cell] += 1
            return hits[0] / hits.sum()

        assert top_share(2.0) > top_share(0.5)


class TestArrivalEnvelope:
    @settings(max_examples=25, deadline=None)
    @given(qps=st.floats(1.0, 500.0), duration=st.floats(0.5, 30.0),
           burstiness=st.floats(0.0, 0.9), seed=st.integers(0, 2**31 - 1))
    def test_count_matches_qps_times_duration(self, qps, duration,
                                              burstiness, seed):
        spec = _spec(target_qps=qps, duration_seconds=duration,
                     burstiness=burstiness, seed=seed)
        events = generate_schedule(spec)
        # Conditioned arrivals: the count is exact, not just in tolerance.
        assert len(events) == max(int(round(qps * duration)), 1)
        assert all(0.0 <= event.at < duration for event in events)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_burstiness_raises_peak_rate(self, seed):
        rng_a = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)
        smooth = arrival_offsets(2000, 10.0, 0.0, rng_a)
        bursty = arrival_offsets(2000, 10.0, 0.8, rng_b)

        def peak_bin(offsets):
            counts, _ = np.histogram(offsets, bins=100, range=(0.0, 10.0))
            return counts.max()

        assert peak_bin(bursty) > peak_bin(smooth)

    def test_ingest_fraction_splits_kinds(self):
        spec = _spec(ingest_fraction=0.3, target_qps=300.0)
        events = generate_schedule(spec)
        ingest = sum(1 for event in events if event.kind == "ingest")
        assert 0.2 < ingest / len(events) < 0.4
        assert all(event.op == "flush" for event in events
                   if event.kind == "ingest")


class TestCellAssignment:
    def test_every_cell_is_populated(self):
        rng = np.random.default_rng(0)
        cells = assign_cells(500, 32, 1.5, rng)
        assert set(np.unique(cells)) == set(range(32))

    def test_hot_cells_are_bigger(self):
        rng = np.random.default_rng(0)
        cells = assign_cells(20_000, 16, 1.2, rng)
        counts = np.bincount(cells, minlength=16)
        assert counts[0] == counts.max()
        assert counts[:8].sum() > counts[8:].sum()
