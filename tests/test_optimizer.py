"""Multi-query optimizer tests: caches, epochs, advisor, bit-exactness.

The optimizer's whole contract is *performance without payload drift*:
every answer served from a cache tier must equal — bit for bit — what
the cold path would have produced against the same engine state.  The
tests here pit an optimizer-enabled :class:`~repro.api.QueryService`
against an uncached mirror through interleaved flushes, shard-local
cluster writes, node failover, and hypothesis-generated query/ingest
sequences, and assert exact payload equality throughout.
"""

import gc
import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import QueryService, QuerySpec
from repro.cluster import ClusterCoordinator
from repro.core.errors import QueryError
from repro.datacube import CubeSchema, DataCube
from repro.druid import MomentsSketchAggregator
from repro.ingest import IngestSession
from repro.optimizer import (EPOCHS, MergeCache, Optimizer,
                             rank_harness_record, rank_metrics)
from repro.summaries.moments_summary import MomentsSummary

K = 8
CELLS = 8
ROWS = 2_000

FULL = QuerySpec(kind="quantile", quantiles=(0.1, 0.5, 0.99),
                 report_moments=True)
OTHER_Q = QuerySpec(kind="quantile", quantiles=(0.9,), report_moments=True)
GROUP = QuerySpec(kind="group_by", quantiles=(0.5,), group_dimension="cell")


def fresh_cube() -> DataCube:
    return DataCube(CubeSchema(("cell",)), lambda: MomentsSummary(k=K))


def batch(seed: int, rows: int = 400):
    rng = np.random.default_rng(seed)
    return (rng.lognormal(1.0, 1.1, rows),
            rng.integers(0, CELLS, rows))


def make_pair(seed: int = 11):
    """Two identically-loaded cubes: (optimized service+session, mirror)."""
    values, cells = batch(seed, ROWS)
    sides = []
    for _ in range(2):
        cube = fresh_cube()
        session = IngestSession(cube, auto_flush=False)
        session.append_columns(values, dims=[cells])
        session.flush()
        sides.append((cube, session))
    (cube_a, session_a), (cube_b, session_b) = sides
    optimizer = Optimizer()
    optimized = QueryService(cube=cube_a, optimizer=optimizer)
    mirror = QueryService(cube=cube_b)
    return optimized, session_a, mirror, session_b, optimizer


def assert_same_payload(response, expected):
    assert response.count == expected.count
    assert response.estimates == expected.estimates
    assert response.moments == expected.moments
    assert response.groups == expected.groups


class TestMergeCache:
    KEY = ("partial", 1, "scan")

    def test_hit_miss_and_stats(self):
        cache = MergeCache(budget_bytes=1024)
        assert cache.get(self.KEY, (0,), "partial") is None
        cache.put(self.KEY, (0,), "value", nbytes=100, tier="partial")
        assert cache.get(self.KEY, (0,), "partial") == "value"
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == 1 and stats["bytes"] == 100
        assert stats["hit_rate"] == 0.5

    def test_epoch_mismatch_drops_stale_entry(self):
        cache = MergeCache(budget_bytes=1024)
        cache.put(self.KEY, (0,), "old", nbytes=100, tier="partial")
        assert cache.get(self.KEY, (1,), "partial") is None
        assert len(cache) == 0
        assert cache.stats()["stale_drops"] == 1
        assert cache.stats()["bytes"] == 0

    def test_lru_eviction_over_byte_budget(self):
        cache = MergeCache(budget_bytes=250)
        cache.put(("a",), (0,), "a", nbytes=100, tier="partial")
        cache.put(("b",), (0,), "b", nbytes=100, tier="partial")
        assert cache.get(("a",), (0,), "partial") == "a"  # a is now MRU
        cache.put(("c",), (0,), "c", nbytes=100, tier="partial")
        assert cache.get(("b",), (0,), "partial") is None  # LRU went first
        assert cache.get(("a",), (0,), "partial") == "a"
        assert cache.get(("c",), (0,), "partial") == "c"
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["bytes"] <= 250

    def test_oversized_entry_is_not_admitted(self):
        cache = MergeCache(budget_bytes=50)
        cache.put(self.KEY, (0,), "huge", nbytes=1000, tier="partial")
        assert len(cache) == 0
        assert cache.get(self.KEY, (0,), "partial") is None

    def test_replacement_reaccounts_bytes(self):
        cache = MergeCache(budget_bytes=1024)
        cache.put(self.KEY, (0,), "v1", nbytes=100, tier="partial")
        cache.put(self.KEY, (1,), "v2", nbytes=300, tier="partial")
        assert cache.stats()["bytes"] == 300
        assert cache.get(self.KEY, (1,), "partial") == "v2"

    def test_clear(self):
        cache = MergeCache(budget_bytes=1024)
        cache.put(self.KEY, (0,), "v", nbytes=100, tier="partial")
        cache.clear()
        assert len(cache) == 0 and cache.stats()["bytes"] == 0


class TestFlushEpochs:
    def test_token_stable_per_object(self):
        EPOCHS.reset()
        cube = fresh_cube()
        other = fresh_cube()
        assert EPOCHS.token(cube) == EPOCHS.token(cube)
        assert EPOCHS.token(cube) != EPOCHS.token(other)

    def test_bump_advances_only_its_engine(self):
        EPOCHS.reset()
        cube = fresh_cube()
        other = fresh_cube()
        assert EPOCHS.epoch(cube) == 0
        EPOCHS.bump(cube)
        assert EPOCHS.epoch(cube) == 1
        assert EPOCHS.epoch(other) == 0

    def test_shard_epochs_are_independent(self):
        EPOCHS.reset()
        cube = fresh_cube()
        EPOCHS.bump_shards(cube, [3, 5])
        EPOCHS.bump_shards(cube, [5])
        assert EPOCHS.epoch_vector(cube, [2, 3, 5]) == (0, 1, 2)
        assert EPOCHS.shard_epoch(cube, 5) == 2
        # The whole-engine counter is a separate clock.
        assert EPOCHS.epoch(cube) == 0

    def test_counters_released_when_engine_is_collected(self):
        EPOCHS.reset()

        class Engine:
            pass

        engine = Engine()
        token = EPOCHS.token(engine)
        EPOCHS.bump(engine)
        EPOCHS.bump_shards(engine, [1])
        del engine
        gc.collect()
        assert token not in EPOCHS._epochs
        assert not EPOCHS._tokens
        assert not EPOCHS._shard_epochs


class TestResponseAndPartialTiers:
    def test_repeat_query_served_from_response_cache_bit_exact(self):
        optimized, _, mirror, _, optimizer = make_pair()
        cold = optimized.execute(FULL)
        expected = mirror.execute(FULL)
        assert_same_payload(cold, expected)
        hit = optimized.execute(FULL)
        assert hit.timings.solve_route == "cached"
        assert hit.shared_scan is True
        assert_same_payload(hit, expected)
        assert optimizer.cache.stats()["hits"] >= 1

    def test_different_quantiles_share_the_scan(self):
        optimized, _, mirror, _, _ = make_pair()
        optimized.execute(FULL)
        other = optimized.execute(OTHER_Q)
        # Same scan signature, different solve signature: the partial
        # tier serves the merged summary; the solve still runs.
        assert other.timings.solve_route != "cached"
        assert other.shared_scan is True
        assert other.timings.merge_seconds == 0.0
        assert_same_payload(other, mirror.execute(OTHER_Q))

    def test_batch_report_counts_cross_batch_cache_hits(self):
        optimized, _, _, _, _ = make_pair()
        specs = [FULL, OTHER_Q]
        optimized.execute_batch(specs)
        first = optimized.last_batch_report
        optimized.execute_batch(specs)
        second = optimized.last_batch_report
        assert first.cache_hits == 0
        assert second.cache_hits == len(specs)

    def test_unknown_backend_name_raises_query_error(self):
        optimized, _, _, _, _ = make_pair()
        with pytest.raises(QueryError):
            optimized.backend("mongodb")


class TestEpochInvalidation:
    def test_interleaved_flushes_stay_bit_exact(self):
        optimized, session_a, mirror, session_b, _ = make_pair()
        previous_count = None
        for round_index in range(3):
            expected = mirror.execute(FULL)
            response = optimized.execute(FULL)
            assert_same_payload(response, expected)
            if previous_count is not None:
                # The post-flush answer reflects the new rows — the
                # stale cached payload was dropped, not served.
                assert response.count > previous_count
            previous_count = response.count
            again = optimized.execute(FULL)
            assert again.timings.solve_route == "cached"
            assert_same_payload(again, expected)
            values, cells = batch(100 + round_index)
            for session in (session_a, session_b):
                session.append_columns(values, dims=[cells])
                session.flush()
        assert_same_payload(optimized.execute(FULL), mirror.execute(FULL))

    def test_filtered_and_group_scans_invalidate_too(self):
        optimized, session_a, mirror, session_b, _ = make_pair()
        point = QuerySpec(kind="quantile", quantiles=(0.5,),
                          filters={"cell": 3}, report_moments=True)
        for spec in (point, GROUP):
            optimized.execute(spec)
            optimized.execute(spec)
        values, cells = batch(200)
        for session in (session_a, session_b):
            session.append_columns(values, dims=[cells])
            session.flush()
        for spec in (point, GROUP):
            assert_same_payload(optimized.execute(spec),
                                mirror.execute(spec))


QUERY_POOL = (
    FULL,
    OTHER_Q,
    QuerySpec(kind="quantile", quantiles=(0.5,), filters={"cell": 1},
              report_moments=True),
    GROUP,
    QuerySpec(kind="top_n", quantiles=(0.9,), group_dimension="cell", n=3),
    QuerySpec(kind="cdf", thresholds=(2.0, 8.0)),
)


class TestPayloadInvarianceProperties:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 2**16),
           ops=st.lists(st.integers(0, len(QUERY_POOL)),
                        min_size=4, max_size=14))
    def test_cache_state_never_changes_any_payload(self, seed, ops):
        """Random query/ingest interleavings: optimizer == mirror, always.

        Op ``len(QUERY_POOL)`` is an ingest flush; every other op indexes
        the query pool.  Whatever hit/miss/eviction/invalidation sequence
        the draw produces, each response must equal the uncached mirror's
        answer against the identical engine state.
        """
        optimized, session_a, mirror, session_b, _ = make_pair(seed=seed)
        flushes = 0
        for op in ops:
            if op == len(QUERY_POOL):
                flushes += 1
                values, cells = batch(seed + flushes, rows=150)
                for session in (session_a, session_b):
                    session.append_columns(values, dims=[cells])
                    session.flush()
                continue
            spec = QUERY_POOL[op]
            assert_same_payload(optimized.execute(spec),
                                mirror.execute(spec))


class TestClusterPerShardInvalidation:
    NODES = ["n0", "n1", "n2"]

    @pytest.fixture()
    def cluster(self):
        coordinator = ClusterCoordinator(
            dimensions=("cell",),
            aggregators={"m": MomentsSketchAggregator(k=K)},
            num_shards=16, replication=2, granularity=1.0,
            nodes=list(self.NODES))
        values, cells = batch(5, ROWS)
        session = IngestSession(coordinator, auto_flush=False)
        session.append_columns(values, dims=[cells],
                               timestamps=np.zeros(values.size))
        session.flush()
        return coordinator, session

    @staticmethod
    def _two_cells_on_distinct_shards(coordinator):
        base = coordinator.shard_of_key((0,))
        for value in range(1, CELLS):
            if coordinator.shard_of_key((value,)) != base:
                return 0, value
        raise AssertionError("all cells hash to one shard")

    def test_writes_invalidate_only_their_shard(self, cluster):
        coordinator, session = cluster
        optimized = QueryService(cluster=coordinator, optimizer=Optimizer())
        mirror = QueryService(cluster=coordinator)
        cell_a, cell_b = self._two_cells_on_distinct_shards(coordinator)
        point = QuerySpec(kind="quantile", quantiles=(0.5,),
                          filters={"cell": cell_a}, report_moments=True)
        optimized.execute(point)
        assert optimized.execute(point).timings.solve_route == "cached"

        # A write that only lands on cell_b's shard leaves cell_a's
        # point query cached.
        rows = np.full(64, float(cell_b))
        session.append_columns(np.abs(rows) + 1.0,
                               dims=[np.full(64, cell_b, dtype=np.int64)],
                               timestamps=np.zeros(64))
        session.flush()
        kept = optimized.execute(point)
        assert kept.timings.solve_route == "cached"
        assert_same_payload(kept, mirror.execute(point))

        # A write to cell_a's own shard invalidates it; the fresh answer
        # matches the uncached mirror (and sees the new rows).
        session.append_columns(np.full(64, 2.5),
                               dims=[np.full(64, cell_a, dtype=np.int64)],
                               timestamps=np.zeros(64))
        session.flush()
        fresh = optimized.execute(point)
        assert fresh.timings.solve_route != "cached"
        assert fresh.count == kept.count + 64
        assert_same_payload(fresh, mirror.execute(point))

    def test_failover_keeps_the_cache_and_the_payload(self, cluster):
        coordinator, _ = cluster
        optimized = QueryService(cluster=coordinator, optimizer=Optimizer())
        mirror = QueryService(cluster=coordinator)
        before = optimized.execute(FULL)
        coordinator.fail_node(self.NODES[-1], repair=True)
        after = optimized.execute(FULL)
        # Repair moves bit-exact replicas, not new data: no epoch bump,
        # the cached payload stays valid and identical.
        assert after.timings.solve_route == "cached"
        assert_same_payload(after, before)
        assert_same_payload(after, mirror.execute(FULL))


class TestRollupAdvisor:
    def test_rank_materialize_and_refresh_bit_exact(self):
        optimized, session_a, mirror, session_b, optimizer = make_pair()
        optimized.execute(GROUP)
        optimized.execute(GROUP)
        ranked = optimizer.advisor.rank()
        assert ranked and ranked[0]["kind"] == "group_by"
        assert ranked[0]["requests"] == 2

        pinned = optimizer.advisor.materialize(optimized)
        assert len(pinned) == 1 and pinned[0]["groups"] == CELLS

        served = optimized.execute(GROUP)
        assert served.shared_scan is True
        assert served.timings.merge_seconds == 0.0
        assert served.groups == mirror.execute(GROUP).groups

        values, cells = batch(300)
        for session in (session_a, session_b):
            session.append_columns(values, dims=[cells])
            session.flush()
        refreshed = optimized.execute(GROUP)
        assert refreshed.groups == mirror.execute(GROUP).groups
        described = optimizer.stats()["materialized"]
        assert described[0]["refreshes"] == 2  # pin + post-flush refresh

    def test_quantile_only_workloads_rank_nothing(self):
        optimized, _, _, _, optimizer = make_pair()
        optimized.execute(FULL)
        optimized.execute(FULL)
        assert optimizer.advisor.rank() == []

    def test_stats_snapshot_is_json_safe(self):
        optimized, _, _, _, optimizer = make_pair()
        optimized.execute(GROUP)
        optimized.execute(GROUP)
        optimizer.advisor.materialize(optimized)
        payload = json.loads(json.dumps(optimizer.stats(), default=float))
        assert payload["cache"]["hits"] >= 1
        assert payload["profile"]["requests"] >= 2
        assert payload["materialized"][0]["groups"] == CELLS


class TestOfflineAdvice:
    RECORD = {
        "run_at": "2026-08-08T00:00:00+00:00",
        "latency": {"cube": {
            "quantile": {"count": 10},
            "group_by": {"count": 6},
            "phase_totals": {"merge_seconds": 0.4},
        }},
    }

    def test_rank_harness_record_weights_by_merge_share(self):
        advice = rank_harness_record(self.RECORD)
        assert [item["kind"] for item in advice] == ["quantile", "group_by"]
        assert advice[0]["action"] == "cache responses"
        assert advice[1]["action"] == "materialize group roll-up"
        assert advice[0]["est_merge_seconds_saved"] == \
            pytest.approx(10 * 0.4 / 16)

    def test_rank_metrics_reads_scan_signature_counters(self):
        metrics = {"counters": [
            {"name": "scan_signature_hits_total",
             "labels": {"backend": "cube", "route": "response"}, "value": 7},
            {"name": "scan_signature_misses_total",
             "labels": {"backend": "cube", "route": "cold"}, "value": 3},
        ]}
        advice = rank_metrics(metrics)
        assert advice[0]["backend"] == "cube"
        assert advice[0]["hit_rate"] == pytest.approx(0.7)
        assert "enable the optimizer" in advice[0]["action"]

    def test_cli_advise_and_stats(self, tmp_path, capsys):
        from repro.cli import main

        trajectory = {"schema": "repro.harness/1",
                      "runs": [dict(self.RECORD,
                                    optimizer={"cache": {"hits": 3},
                                               "profile": {},
                                               "materialized": []})]}
        path = tmp_path / "BENCH_harness.json"
        path.write_text(json.dumps(trajectory), encoding="utf-8")

        assert main(["optimizer", "advise", str(path)]) == 0
        advice = json.loads(capsys.readouterr().out)
        assert advice["mode"] == "harness"
        assert advice["advice"][0]["backend"] == "cube"

        assert main(["optimizer", "stats", str(path)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["optimizer"]["cache"]["hits"] == 3

        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}", encoding="utf-8")
        assert main(["optimizer", "advise", str(bogus)]) == 1
