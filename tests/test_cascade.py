"""Tests for the threshold-query cascade (Algorithm 2)."""

import numpy as np
import pytest

from repro.core import MomentsSketch
from repro.core.cascade import STAGES, CascadeStats, ThresholdCascade
from repro.core.quantile import QuantileEstimator


@pytest.fixture(scope="module")
def sketch():
    rng = np.random.default_rng(0)
    return MomentsSketch.from_data(rng.lognormal(1.0, 1.0, 30_000), k=10)


class TestThresholdCorrectness:
    def test_consistent_with_direct_estimate(self, sketch):
        """Section 5.2's guarantee: the cascade answers exactly as the
        max-entropy estimate would, for every threshold position."""
        estimator = QuantileEstimator.fit(sketch)
        cascade = ThresholdCascade()
        phi = 0.9
        q = estimator.quantile(phi)
        for t in np.linspace(sketch.min - 1, sketch.max + 1, 60):
            expected = q > t
            assert cascade.threshold(sketch, float(t), phi) == expected, f"t={t}"

    def test_extreme_thresholds_short_circuit(self, sketch):
        cascade = ThresholdCascade()
        low = cascade.evaluate(sketch, sketch.min - 10.0, 0.5)
        assert low.result is True and low.stage == "simple"
        high = cascade.evaluate(sketch, sketch.max + 10.0, 0.5)
        assert high.result is False and high.stage == "simple"

    def test_threshold_at_max_is_false(self, sketch):
        # q_phi can never exceed the maximum.
        cascade = ThresholdCascade()
        outcome = cascade.evaluate(sketch, sketch.max, 0.99)
        assert outcome.result is False and outcome.stage == "simple"

    @pytest.mark.parametrize("phi", [0.5, 0.9, 0.99])
    def test_stage_subsets_agree(self, sketch, phi):
        """Disabling stages changes cost, never answers."""
        full = ThresholdCascade()
        markov_only = ThresholdCascade(enabled_stages=("simple", "markov"))
        bare = ThresholdCascade(enabled_stages=())
        for t in np.quantile(np.asarray([sketch.min, sketch.max]), [0.0, 1.0]).tolist() \
                + [sketch.min * 2, sketch.max / 4, sketch.max / 2]:
            answers = {full.threshold(sketch, float(t), phi),
                       markov_only.threshold(sketch, float(t), phi),
                       bare.threshold(sketch, float(t), phi)}
            assert len(answers) == 1, f"t={t}"


class TestStageProgression:
    def test_easy_query_resolved_before_maxent(self, sketch):
        cascade = ThresholdCascade()
        # Threshold near the median vs phi=0.99: bounds decide instantly.
        outcome = cascade.evaluate(sketch, float(np.exp(1.0)), 0.99)
        assert outcome.stage in ("markov", "rtt")

    def test_hard_query_reaches_maxent(self, sketch):
        cascade = ThresholdCascade()
        estimator = QuantileEstimator.fit(sketch)
        q99 = estimator.quantile(0.99)
        outcome = cascade.evaluate(sketch, q99 * 0.999, 0.99)
        assert outcome.stage == "maxent"

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError):
            ThresholdCascade(enabled_stages=("simple", "warp-drive"))


class TestStats:
    def test_stats_accumulate(self, sketch):
        cascade = ThresholdCascade()
        thresholds = np.linspace(sketch.min, sketch.max, 25)
        for t in thresholds:
            cascade.threshold(sketch, float(t), 0.9)
        stats = cascade.stats
        assert stats.queries == 25
        assert stats.stages["simple"].entered == 25
        # Later stages see monotonically fewer queries (Figure 13c).
        entered = [stats.stages[name].entered for name in STAGES]
        assert entered == sorted(entered, reverse=True)
        resolved_total = sum(stats.stages[name].resolved for name in STAGES)
        assert resolved_total == 25

    def test_fraction_and_throughput_api(self, sketch):
        cascade = ThresholdCascade()
        cascade.threshold(sketch, float(sketch.max / 2), 0.9)
        summary = cascade.stats.summary()
        assert set(summary) == set(STAGES)
        assert summary["simple"]["fraction_entered"] == 1.0
        assert summary["simple"]["throughput_qps"] > 0

    def test_empty_stats(self):
        stats = CascadeStats()
        assert stats.fraction_entered("simple") == 0.0


class TestDegradedPaths:
    def test_discrete_data_still_answers(self):
        # Two-point data: the max-entropy stage cannot converge; the
        # cascade must fall back to bound midpoints, not raise.
        sketch = MomentsSketch.from_data([0.0] * 900 + [10.0] * 100, k=10)
        cascade = ThresholdCascade()
        assert cascade.threshold(sketch, 5.0, 0.95) is True
        assert cascade.threshold(sketch, 5.0, 0.5) is False
