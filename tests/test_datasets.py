"""Tests for the synthetic dataset generators (Table 1 substitutes)."""

import numpy as np
import pytest

from repro.core.errors import DatasetError
from repro.datasets import (
    EVALUATION_DATASETS,
    available,
    gamma_skew,
    gaussian_with_outliers,
    generate_cells,
    load,
    spec,
    summary_statistics,
    uniform_discrete,
)


class TestRegistry:
    def test_all_evaluation_datasets_available(self):
        assert set(EVALUATION_DATASETS) <= set(available())

    def test_unknown_name_rejected(self):
        with pytest.raises(DatasetError):
            load("definitely-not-a-dataset")

    def test_bad_size_rejected(self):
        with pytest.raises(DatasetError):
            load("milan", n=0)

    def test_deterministic_given_seed(self):
        a = load("hepmass", 10_000, seed=3)
        b = load("hepmass", 10_000, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = load("hepmass", 10_000, seed=1)
        b = load("hepmass", 10_000, seed=2)
        assert not np.array_equal(a, b)

    def test_returned_arrays_read_only(self):
        data = load("power", 5_000)
        with pytest.raises(ValueError):
            data[0] = 1.0


@pytest.mark.parametrize("name", EVALUATION_DATASETS)
class TestShapeFidelity:
    """Generated data must land near the published Table 1 statistics."""

    def test_support_within_published_bounds(self, name):
        data = load(name, 100_000)
        published = spec(name)
        assert data.min() >= published.paper_min - 1e-9
        assert data.max() <= published.paper_max + 1e-9

    def test_mean_within_factor_two(self, name):
        stats = summary_statistics(load(name, 100_000))
        published = spec(name)
        assert 0.5 <= stats["mean"] / published.paper_mean <= 2.0

    def test_skew_sign_and_magnitude_class(self, name):
        stats = summary_statistics(load(name, 100_000))
        published = spec(name)
        # Same order of magnitude of skewness (long-tailed stays long-tailed).
        assert np.sign(stats["skew"]) == np.sign(published.paper_skew)
        assert 0.2 <= stats["skew"] / published.paper_skew <= 5.0


class TestSpecialGenerators:
    def test_gamma_skew_parameter(self):
        low = summary_statistics(gamma_skew(200_000, shape=10.0))
        high = summary_statistics(gamma_skew(200_000, shape=0.1))
        # skew = 2 / sqrt(ks)
        assert low["skew"] == pytest.approx(2 / np.sqrt(10), rel=0.3)
        assert high["skew"] > low["skew"]

    def test_gamma_invalid_shape(self):
        with pytest.raises(DatasetError):
            gamma_skew(shape=0.0)

    def test_outlier_injection_fraction(self):
        data = gaussian_with_outliers(100_000, outlier_magnitude=50.0,
                                      outlier_fraction=0.01)
        assert np.mean(data > 25.0) == pytest.approx(0.01, abs=0.002)

    def test_outlier_fraction_validation(self):
        with pytest.raises(DatasetError):
            gaussian_with_outliers(outlier_fraction=1.5)

    def test_uniform_discrete_cardinality(self):
        data = uniform_discrete(50_000, cardinality=7)
        assert np.unique(data).size == 7
        assert data.min() >= -1.0 and data.max() <= 1.0

    def test_uniform_discrete_single_point(self):
        assert np.all(uniform_discrete(100, cardinality=1) == 0.0)


class TestProductionWorkload:
    def test_variable_cell_sizes(self):
        cells = generate_cells(num_cells=500, seed=0)
        sizes = np.asarray([cell.values.size for cell in cells])
        assert sizes.min() >= 5
        assert sizes.max() / sizes.mean() > 5  # heavy-tailed sizes

    def test_values_are_positive_integers(self):
        cells = generate_cells(num_cells=50, seed=1)
        for cell in cells[:10]:
            assert np.all(cell.values >= 1)
            np.testing.assert_array_equal(cell.values, np.round(cell.values))

    def test_keys_have_four_dimensions(self):
        cells = generate_cells(num_cells=10, seed=2)
        assert all(len(cell.key) == 4 for cell in cells)
