"""Tests for repro.analysis: the fixture corpus (exact file:line:rule
assertions per rule family), noqa suppression, baseline semantics, the
CLI gate, and the meta-test that the live tree is clean at head."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    ApiHygieneChecker,
    DeterminismChecker,
    Finding,
    LockDisciplineChecker,
    TelemetryGuardChecker,
    all_rules,
    analyze_paths,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.config import AnalysisConfig, DEFAULT_CONFIG, LockSpec
from repro.core.errors import AnalysisError, ReproError

TESTS_DIR = Path(__file__).resolve().parent
FIXTURES = TESTS_DIR / "fixtures" / "analysis"
REPO_ROOT = TESTS_DIR.parent

#: Fixture-shaped configuration: same checkers, fixture-local scopes.
FIXTURE_CONFIG = AnalysisConfig(
    guarded_by={
        "fixtures/analysis/locks_cases.py": {
            "Account": LockSpec(guarded=frozenset({"balance", "history"})),
        },
    },
    determinism_modules=(
        "fixtures/analysis/determinism_cases.py",
        "fixtures/analysis/noqa_cases.py",
    ),
    error_taxonomy_modules=("fixtures/analysis/api_cases.py",),
)


def run_fixture(name, checker):
    findings, files = analyze_paths(
        [FIXTURES / name], config=FIXTURE_CONFIG, checkers=[checker])
    assert files == 1
    return [(f.line, f.rule) for f in findings]


# ----------------------------------------------------------------------
# Rule families against the fixture corpus
# ----------------------------------------------------------------------

def test_lock_discipline_fixture():
    assert run_fixture("locks_cases.py", LockDisciplineChecker) == [
        (23, "LOCK001"),   # read outside the lock
        (28, "LOCK001"),   # closure escape into a pool
        (31, "LOCK002"),   # _locked helper without the lock
    ]


def test_lock_closure_escape_message():
    findings, _ = analyze_paths([FIXTURES / "locks_cases.py"],
                                config=FIXTURE_CONFIG,
                                checkers=[LockDisciplineChecker])
    closure = [f for f in findings if f.line == 28]
    assert len(closure) == 1
    assert "closure" in closure[0].message


def test_determinism_fixture():
    assert run_fixture("determinism_cases.py", DeterminismChecker) == [
        (6, "DET001"),     # set literal in a for loop
        (13, "DET002"),    # .keys() in a comprehension
        (21, "DET003"),    # float-hinted sum()
    ]


def test_telemetry_guard_fixture():
    assert run_fixture("telemetry_cases.py", TelemetryGuardChecker) == [
        (8, "TEL001"),     # unguarded data-plane call
        (31, "TEL002"),    # manual .end() on an attached span
        (36, "TEL002"),    # span opened and discarded
    ]


def test_api_hygiene_fixture():
    assert run_fixture("api_cases.py", ApiHygieneChecker) == [
        (11, "API001"),    # deprecated phi= call site
        (28, "API002"),    # bare ValueError in a taxonomy module
    ]


def test_noqa_suppression():
    # line-level noqa[DET001], bare noqa, and function-level noqa all
    # suppress; a noqa naming the wrong rule does not.
    assert run_fixture("noqa_cases.py", DeterminismChecker) == [
        (17, "DET001"),
    ]


def test_parse_error_is_reported_not_raised(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    findings, files = analyze_paths([bad], config=FIXTURE_CONFIG)
    assert files == 1
    assert [f.rule for f in findings] == ["PARSE001"]


def test_missing_path_raises():
    with pytest.raises(AnalysisError):
        analyze_paths([FIXTURES / "no_such_file.py"], config=FIXTURE_CONFIG)


def test_rule_catalogue_unique_and_complete():
    specs = all_rules()
    ids = [spec.rule for spec in specs]
    assert len(ids) == len(set(ids))
    assert set(ids) >= {
        "PARSE001", "LOCK001", "LOCK002", "DET001", "DET002", "DET003",
        "TEL001", "TEL002", "API001", "API002",
    }


def test_finding_format_and_sorting():
    finding = Finding(path="src/x.py", line=3, col=5, rule="DET001",
                      message="msg", snippet="for x in s:")
    assert finding.format() == "src/x.py:3:5: DET001 msg"
    assert finding.baseline_key() == "src/x.py::DET001::for x in s:"


# ----------------------------------------------------------------------
# Baseline semantics
# ----------------------------------------------------------------------

def _finding(snippet="x = 1", line=1):
    return Finding(path="src/a.py", line=line, col=1, rule="DET001",
                   message="m", snippet=snippet)


def test_baseline_roundtrip(tmp_path):
    path = tmp_path / "baseline.json"
    findings = [_finding(), _finding("y = 2", line=9)]
    save_baseline(path, findings)
    fresh, suppressed = apply_baseline(findings, load_baseline(path))
    assert fresh == []
    assert suppressed == 2


def test_baseline_survives_line_drift(tmp_path):
    path = tmp_path / "baseline.json"
    save_baseline(path, [_finding(line=10)])
    moved = [_finding(line=99)]  # same snippet, different line
    fresh, suppressed = apply_baseline(moved, load_baseline(path))
    assert fresh == []
    assert suppressed == 1


def test_baseline_is_a_multiset(tmp_path):
    # Two identical violations need two entries: fixing one of them must
    # surface the other.
    path = tmp_path / "baseline.json"
    save_baseline(path, [_finding()])
    dupes = [_finding(line=1), _finding(line=2)]
    fresh, suppressed = apply_baseline(dupes, load_baseline(path))
    assert suppressed == 1
    assert len(fresh) == 1


def test_baseline_missing_file():
    with pytest.raises(AnalysisError):
        load_baseline("/no/such/baseline.json")


def test_baseline_corrupt_and_unsupported(tmp_path):
    garbage = tmp_path / "garbage.json"
    garbage.write_text("{not json", encoding="utf-8")
    with pytest.raises(AnalysisError):
        load_baseline(garbage)
    wrong_version = tmp_path / "version.json"
    wrong_version.write_text(json.dumps({"version": 99, "findings": []}),
                             encoding="utf-8")
    with pytest.raises(AnalysisError):
        load_baseline(wrong_version)
    keyless = tmp_path / "keyless.json"
    keyless.write_text(json.dumps({"version": 1, "findings": [{}]}),
                       encoding="utf-8")
    with pytest.raises(AnalysisError):
        load_baseline(keyless)


def test_analysis_error_is_in_taxonomy():
    assert issubclass(AnalysisError, ReproError)


# ----------------------------------------------------------------------
# CLI gate
# ----------------------------------------------------------------------

def _run_cli(*argv, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "analysis", "lint", *argv],
        capture_output=True, text=True, cwd=cwd, env=env)


def test_cli_rules_catalogue():
    proc = _run_cli("--rules")
    assert proc.returncode == 0
    doc = json.loads(proc.stdout)
    assert "LOCK001" in doc["rules"]
    assert "TEL001" in doc["rules"]


def test_cli_lint_reports_findings_as_json(tmp_path):
    # Under the default config the api fixture still trips API001 (the
    # phi= rule applies to every call site).
    out = tmp_path / "findings.json"
    proc = _run_cli(str(FIXTURES / "api_cases.py"),
                    "--format", "json", "--output", str(out))
    assert proc.returncode == 1
    doc = json.loads(proc.stdout)
    assert doc["files_checked"] == 1
    assert [f["rule"] for f in doc["findings"]] == ["API001"]
    assert json.loads(out.read_text(encoding="utf-8")) == doc


def test_cli_update_baseline_then_clean(tmp_path):
    baseline = tmp_path / "baseline.json"
    proc = _run_cli(str(FIXTURES / "api_cases.py"),
                    "--update-baseline", "--baseline", str(baseline))
    assert proc.returncode == 0
    proc = _run_cli(str(FIXTURES / "api_cases.py"),
                    "--baseline", str(baseline), "--format", "json")
    assert proc.returncode == 0
    doc = json.loads(proc.stdout)
    assert doc["findings"] == []
    assert doc["suppressed_by_baseline"] == 1


def test_cli_update_baseline_requires_path():
    proc = _run_cli(str(FIXTURES / "api_cases.py"), "--update-baseline")
    assert proc.returncode == 2


# ----------------------------------------------------------------------
# Meta-test: the live tree is clean at head
# ----------------------------------------------------------------------

def test_live_tree_is_clean():
    findings, files = analyze_paths(
        [REPO_ROOT / "src", REPO_ROOT / "examples"], config=DEFAULT_CONFIG)
    assert files > 50
    assert [f.format() for f in findings] == []
