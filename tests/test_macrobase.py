"""Tests for the MacroBase-style threshold-search engine."""

import numpy as np
import pytest

from repro.core.errors import QueryError
from repro.macrobase import (
    MacroBaseEngine,
    MomentsCube,
    merge12a_query,
    merge12b_query,
)


@pytest.fixture(scope="module")
def anomalous_workload():
    """Dimension value (0, 'v8') has a 20x latency tail: the planted anomaly
    every strategy must find.  The anomalous subgroup must hold well under
    1/30 of the rows — otherwise a 30x outlier-rate ratio is arithmetically
    impossible (rate * share cannot exceed the global 1%)."""
    rng = np.random.default_rng(0)
    n = 40_000
    version = rng.choice(["v7", "v8", "v9"], n, p=[0.49, 0.02, 0.49])
    hw = rng.integers(0, 8, n)
    values = rng.lognormal(1.0, 0.8, n)
    hot = version == "v8"
    values[hot] = rng.lognormal(4.0, 0.8, int(hot.sum()))
    return [version, hw], values


class TestMomentsCube:
    def test_cells_partition_rows(self, anomalous_workload):
        dims, values = anomalous_workload
        cube = MomentsCube.build(dims, values, k=10)
        assert sum(s.count for s in cube.cells.values()) == values.size
        assert cube.num_cells == len({(a, b) for a, b in zip(*dims)})


class TestMacroBaseQuery:
    def test_finds_planted_anomaly(self, anomalous_workload):
        dims, values = anomalous_workload
        engine = MacroBaseEngine(MomentsCube.build(dims, values, k=10))
        report = engine.find_outlier_groups(outlier_phi=0.99, rate_multiplier=30.0)
        flagged = {(g.dimension, g.value) for g in report.groups}
        assert (0, "v8") in flagged

    def test_does_not_flag_everything(self, anomalous_workload):
        dims, values = anomalous_workload
        engine = MacroBaseEngine(MomentsCube.build(dims, values, k=10))
        report = engine.find_outlier_groups()
        assert len(report.groups) < report.candidates_checked / 2

    def test_global_threshold_close_to_truth(self, anomalous_workload):
        dims, values = anomalous_workload
        engine = MacroBaseEngine(MomentsCube.build(dims, values, k=10))
        threshold, _, merged = engine.global_quantile(0.99)
        assert merged.count == values.size
        assert threshold == pytest.approx(np.quantile(values, 0.99), rel=0.25)

    def test_cascade_stats_populated(self, anomalous_workload):
        dims, values = anomalous_workload
        engine = MacroBaseEngine(MomentsCube.build(dims, values, k=10))
        report = engine.find_outlier_groups()
        assert report.cascade_stats is not None
        assert report.cascade_stats.queries == report.candidates_checked

    def test_invalid_rate_multiplier(self, anomalous_workload):
        dims, values = anomalous_workload
        engine = MacroBaseEngine(MomentsCube.build(dims, values, k=10))
        with pytest.raises(QueryError):
            engine.find_outlier_groups(outlier_phi=0.99, rate_multiplier=200.0)

    def test_cascade_lesion_same_answers(self, anomalous_workload):
        """Adding cascade stages must never change the reported groups."""
        dims, values = anomalous_workload
        cube = MomentsCube.build(dims, values, k=10)
        baseline = MacroBaseEngine(cube, cascade_stages=())
        full = MacroBaseEngine(cube, cascade_stages=("simple", "markov", "rtt"))
        groups_a = {(g.dimension, g.value)
                    for g in baseline.find_outlier_groups().groups}
        groups_b = {(g.dimension, g.value)
                    for g in full.find_outlier_groups().groups}
        assert groups_a == groups_b


class TestBaselines:
    def test_merge12a_finds_anomaly(self, anomalous_workload):
        dims, values = anomalous_workload
        report = merge12a_query(dims, values)
        assert (0, "v8") in {(g.dimension, g.value) for g in report.groups}

    def test_merge12b_finds_anomaly(self, anomalous_workload):
        dims, values = anomalous_workload
        report = merge12b_query(dims, values)
        assert (0, "v8") in {(g.dimension, g.value) for g in report.groups}

    def test_strategies_agree_on_flagged_set(self, anomalous_workload):
        dims, values = anomalous_workload
        engine = MacroBaseEngine(MomentsCube.build(dims, values, k=10))
        moments = {(g.dimension, g.value)
                   for g in engine.find_outlier_groups().groups}
        counts = {(g.dimension, g.value)
                  for g in merge12b_query(dims, values).groups}
        # The clearly-anomalous group agrees; borderline groups may differ
        # by estimator noise, so compare with slack.
        assert (0, "v8") in moments and (0, "v8") in counts
        assert len(moments.symmetric_difference(counts)) <= 3
