"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    output = capsys.readouterr().out
    return code, json.loads(output)


@pytest.fixture()
def value_file(tmp_path):
    rng = np.random.default_rng(0)
    path = tmp_path / "values.csv"
    np.savetxt(path, rng.lognormal(1.0, 1.0, 5000))
    return path


@pytest.fixture()
def sketch_file(tmp_path, value_file, capsys):
    path = tmp_path / "sketch.msk"
    code, _ = run_cli(capsys, "sketch", "build", str(value_file),
                      "-o", str(path), "--k", "10")
    assert code == 0
    return path


class TestSketchCommands:
    def test_build_reports_metadata(self, tmp_path, value_file, capsys):
        out = tmp_path / "s.msk"
        code, result = run_cli(capsys, "sketch", "build", str(value_file),
                               "-o", str(out))
        assert code == 0
        assert result["count"] == 5000
        assert result["size_bytes"] < 250
        assert out.exists()

    def test_build_without_log_moments(self, tmp_path, value_file, capsys):
        out = tmp_path / "s.msk"
        code, result = run_cli(capsys, "sketch", "build", str(value_file),
                               "-o", str(out), "--no-log")
        assert code == 0
        _, info = run_cli(capsys, "sketch", "info", str(out))
        assert info["log_moments"] is False

    def test_merge_and_query(self, tmp_path, capsys):
        rng = np.random.default_rng(1)
        data = rng.normal(10, 2, 8000)
        paths = []
        for i, chunk in enumerate(np.split(data, 4)):
            values = tmp_path / f"v{i}.csv"
            np.savetxt(values, chunk)
            sketch = tmp_path / f"s{i}.msk"
            run_cli(capsys, "sketch", "build", str(values), "-o", str(sketch))
            paths.append(str(sketch))
        merged = tmp_path / "merged.msk"
        code, result = run_cli(capsys, "sketch", "merge", *paths,
                               "-o", str(merged))
        assert code == 0 and result["count"] == 8000
        code, result = run_cli(capsys, "sketch", "query", str(merged),
                               "--q", "0.5", "0.9")
        assert code == 0
        assert result["quantiles"]["0.5"] == pytest.approx(10.0, abs=0.3)

    def test_threshold(self, sketch_file, capsys):
        code, result = run_cli(capsys, "sketch", "threshold", str(sketch_file),
                               "--t", "1e9", "--q", "0.99")
        assert code == 0
        assert result["exceeds"] is False
        assert result["decided_by"] == "simple"
        assert result["solve_route"] == "batched"

    def test_threshold_batched_flag_ab(self, sketch_file, capsys):
        """--batched/--no-batched A/B the estimation paths, same answer."""
        code, batched = run_cli(capsys, "sketch", "threshold",
                                str(sketch_file), "--t", "8.0", "--q", "0.99",
                                "--batched")
        assert code == 0 and batched["solve_route"] == "batched"
        code, scalar = run_cli(capsys, "sketch", "threshold",
                               str(sketch_file), "--t", "8.0", "--q", "0.99",
                               "--no-batched")
        assert code == 0 and scalar["solve_route"] == "scalar"
        assert batched["exceeds"] == scalar["exceeds"]
        assert batched["decided_by"] == scalar["decided_by"]

    def test_query_no_batched_flag_same_answer(self, sketch_file, capsys):
        code, on = run_cli(capsys, "sketch", "query", str(sketch_file),
                           "--q", "0.9")
        assert code == 0
        code, off = run_cli(capsys, "sketch", "query", str(sketch_file),
                            "--q", "0.9", "--no-batched")
        assert code == 0
        assert on["quantiles"]["0.9"] == pytest.approx(
            off["quantiles"]["0.9"], rel=1e-6)

    def test_query_q_flag_matches_phi(self, sketch_file, capsys):
        code, via_q = run_cli(capsys, "sketch", "query", str(sketch_file),
                              "--q", "0.5", "0.9")
        assert code == 0
        with pytest.warns(DeprecationWarning):
            code, via_phi = run_cli(capsys, "sketch", "query",
                                    str(sketch_file), "--phi", "0.5", "0.9")
        assert code == 0
        assert via_q == via_phi

    def test_query_rejects_q_and_phi_together(self, sketch_file, capsys):
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            code, result = run_cli(capsys, "sketch", "query",
                                   str(sketch_file),
                                   "--q", "0.5", "--phi", "0.9")
        assert code == 1 and "error" in result

    def test_query_spec_emits_query_response(self, sketch_file, capsys):
        code, result = run_cli(
            capsys, "sketch", "query", str(sketch_file), "--spec",
            '{"kind": "quantile", "quantiles": [0.5], "report_bounds": true}')
        assert code == 0
        assert result["kind"] == "quantile"
        assert "0.5" in result["estimates"]
        assert 0 < result["bounds"]["0.5"] <= 1
        assert set(result["timings"]) == {"planner_seconds", "merge_seconds",
                                          "solve_seconds", "solve_calls",
                                          "solve_route"}
        assert result["timings"]["solve_route"] == "scalar"
        # Flag-based invocation must agree with the spec-routed one.
        code, legacy = run_cli(capsys, "sketch", "query", str(sketch_file),
                               "--q", "0.5")
        assert legacy["quantiles"]["0.5"] == result["estimates"]["0.5"]

    def test_threshold_spec_route(self, sketch_file, capsys):
        code, result = run_cli(
            capsys, "sketch", "threshold", str(sketch_file), "--spec",
            '{"kind": "threshold_count", "q": 0.99, "t": 1e9}')
        assert code == 0
        assert result["value"] == 0.0
        assert result["groups"]["*"]["1000000000.0"]["exceeds"] is False

    def test_threshold_requires_t_without_spec(self, sketch_file, capsys):
        code, result = run_cli(capsys, "sketch", "threshold",
                               str(sketch_file))
        assert code == 1 and "error" in result

    def test_bad_spec_is_structured_error(self, sketch_file, capsys):
        code, result = run_cli(capsys, "sketch", "query", str(sketch_file),
                               "--spec", '{"kind": "nope"}')
        assert code == 1 and "error" in result

    def test_bounds(self, sketch_file, capsys):
        code, result = run_cli(capsys, "sketch", "bounds", str(sketch_file),
                               "--t", "3.0")
        assert code == 0
        assert 0 <= result["rtt"]["lower"] <= result["rtt"]["upper"] <= 5000
        assert result["rtt"]["upper"] - result["rtt"]["lower"] <= \
            result["markov"]["upper"] - result["markov"]["lower"] + 1e-6

    def test_info_reports_selection(self, sketch_file, capsys):
        code, result = run_cli(capsys, "sketch", "info", str(sketch_file))
        assert code == 0
        assert result["k"] == 10
        assert "selected_k1" in result

    def test_missing_file_is_structured_error(self, capsys):
        code, result = run_cli(capsys, "sketch", "info", "/nonexistent.msk")
        assert code == 2
        assert "error" in result


class TestDatasetCommands:
    def test_list(self, capsys):
        code, result = run_cli(capsys, "datasets", "list")
        assert code == 0
        assert "milan" in result["datasets"]

    def test_stats(self, capsys):
        code, result = run_cli(capsys, "datasets", "stats", "exponential",
                               "--rows", "20000")
        assert code == 0
        assert result["generated"]["mean"] == pytest.approx(1.0, rel=0.1)
        assert result["paper"]["mean"] == 1.0

    def test_generate(self, tmp_path, capsys):
        out = tmp_path / "data.csv"
        code, result = run_cli(capsys, "datasets", "generate", "power",
                               "-o", str(out), "--rows", "5000")
        assert code == 0 and result["rows"] == 5000
        assert np.loadtxt(out).size == 5000

    def test_unknown_dataset_is_structured_error(self, capsys):
        code, result = run_cli(capsys, "datasets", "stats", "nope")
        assert code == 1
        assert "DatasetError" in result["error"]


class TestIngestCommand:
    @pytest.fixture()
    def row_csv(self, tmp_path):
        rng = np.random.default_rng(5)
        path = tmp_path / "rows.csv"
        with path.open("w") as stream:
            stream.write("service,value\n")
            for service, value in zip(rng.choice(["api", "web"], 400),
                                      rng.lognormal(1.0, 1.0, 400)):
                stream.write(f"{service},{value}\n")
        return path

    def test_csv_into_cube_then_query(self, row_csv, capsys):
        code, result = run_cli(
            capsys, "ingest", str(row_csv),
            "--spec", '{"backend": "cube", "dimensions": ["service"]}',
            "--query", '{"kind": "group_by", "group_dimension": "service", '
                       '"quantiles": [0.5]}')
        assert code == 0
        assert result["backend"] == "cube"
        assert result["rows"] == 400
        assert result["cells"] == 2
        assert result["flushes"] == 1
        assert result["reports"][0]["trigger"] == "close"
        assert set(result["query"]["groups"]) == {"api", "web"}

    def test_jsonl_into_cluster_micro_batched(self, tmp_path, capsys):
        rng = np.random.default_rng(6)
        path = tmp_path / "rows.jsonl"
        with path.open("w") as stream:
            for i, value in enumerate(rng.lognormal(1.0, 1.0, 300)):
                stream.write(json.dumps({"cell": int(i % 10),
                                         "timestamp": float(i % 3),
                                         "value": float(value)}) + "\n")
        spec = {"backend": "cluster", "dimensions": ["cell"],
                "num_shards": 4, "replication": 2, "nodes": 2,
                "granularity": 1.0, "dedup_key": "cli-load",
                "flush_rows": 100}
        code, result = run_cli(
            capsys, "ingest", str(path), "--spec", json.dumps(spec),
            "--query", '{"kind": "quantile", "quantiles": [0.5, 0.99]}')
        assert code == 0
        assert result["rows"] == 300
        assert result["flushes"] == 3
        for index, report in enumerate(result["reports"]):
            assert report["sequence"] == ["cli-load", index]
            assert report["shards"] == 4
            assert report["replicas"] == 8  # 4 shards x 2 replicas
        assert result["query"]["count"] == 300.0

    def test_window_value_stream(self, tmp_path, capsys):
        path = tmp_path / "values.csv"
        with path.open("w") as stream:
            stream.write("value\n")
            for i in range(250):
                stream.write(f"{1.0 + (i % 7)}\n")
        spec = {"backend": "window", "pane_size": 50, "window_panes": 2}
        code, result = run_cli(
            capsys, "ingest", str(path), "--spec", json.dumps(spec),
            "--query", '{"kind": "quantile", "quantiles": [0.9]}')
        assert code == 0
        assert result["cells"] == 5  # sealed panes
        # The monitor retains the live window only (window_panes panes).
        assert result["query"]["cells_scanned"] == 2

    def test_missing_column_is_structured_error(self, row_csv, capsys):
        code, result = run_cli(
            capsys, "ingest", str(row_csv),
            "--spec", '{"backend": "cube", "dimensions": ["region"]}')
        assert code == 1
        assert "IngestError" in result["error"]
        assert "region" in result["error"]

    def test_spec_without_backend_is_structured_error(self, row_csv, capsys):
        code, result = run_cli(capsys, "ingest", str(row_csv),
                               "--spec", '{"dimensions": ["service"]}')
        assert code == 1
        assert "IngestError" in result["error"]


class TestClusterCommands:
    def test_demo_bit_exact_failover(self, capsys):
        code, result = run_cli(capsys, "cluster", "demo",
                               "--rows", "8000", "--nodes", "3",
                               "--shards", "8", "--cells", "40")
        assert code == 0
        assert result["matches_single_process"] is True
        assert result["failover"]["answers_unchanged"] is True
        assert result["failover"]["repaired"] is True
        assert result["failover"]["rebalance"]["copied_shards"] >= 0
        assert set(result["timings"]) == {"route_seconds", "scatter_seconds",
                                          "merge_seconds", "solve_seconds"}
        assert result["topology"]["cells"] == 40

    def test_demo_no_repair_serves_degraded(self, capsys):
        code, result = run_cli(capsys, "cluster", "demo",
                               "--rows", "5000", "--nodes", "3",
                               "--shards", "8", "--cells", "25",
                               "--no-repair", "--kill", "node-0",
                               "--q", "0.9")
        assert code == 0
        assert result["failover"]["killed"] == "node-0"
        assert result["failover"]["answers_unchanged"] is True
        assert result["failover"]["rebalance"] is None
        assert list(result["quantiles"]) == ["0.9"]

    def test_placement_reports_movement(self, capsys):
        code, result = run_cli(capsys, "cluster", "placement",
                               "--nodes", "4", "--shards", "64")
        assert code == 0
        assert sum(result["primary_shards_per_node"].values()) == 64
        assert 0 < result["moved_fraction"] < 1


class TestStorageCommands:
    @pytest.fixture()
    def tiered_dir(self, tmp_path):
        from repro.storage import TieredStore
        rng = np.random.default_rng(0)
        home = tmp_path / "tiers"
        with TieredStore(home, k=7, dimensions=("cell",),
                         hot_budget_bytes=1500) as store:
            for _ in range(8):
                store.ingest_columns(
                    [rng.integers(0, 400, 200).astype(str)],
                    rng.lognormal(0, 1, 200) + 0.01)
            assert len(store.stats()["segments"]) >= 3
        return home

    def test_inspect_reports_geometry(self, tiered_dir, capsys):
        segment = sorted(tiered_dir.glob("seg-*.rsg"))[0]
        code, result = run_cli(capsys, "storage", "inspect", str(segment))
        assert code == 0
        assert result["kind"] == "warm" and result["k"] == 7
        assert result["rows"] >= 1 and result["size_bytes"] > 0
        assert result["min_key"] <= result["max_key"]
        assert "keys" not in result
        code, with_keys = run_cli(capsys, "storage", "inspect",
                                  str(segment), "--keys")
        assert code == 0 and len(with_keys["keys"]) == result["rows"]

    def test_inspect_detects_corruption(self, tiered_dir, capsys):
        segment = sorted(tiered_dir.glob("seg-*.rsg"))[0]
        blob = bytearray(segment.read_bytes())
        blob[50] ^= 0xFF
        segment.write_bytes(bytes(blob))
        code, result = run_cli(capsys, "storage", "inspect", str(segment))
        assert code == 1 and "checksum" in result["error"]

    def test_compact_reduces_segments(self, tiered_dir, capsys):
        code, result = run_cli(capsys, "storage", "compact",
                               str(tiered_dir))
        assert code == 0
        assert result["segments_after"] < result["segments_before"]
        assert result["rows_after"] <= result["rows_before"]
        assert result["disk_bytes_after"] < result["disk_bytes_before"]

    def test_compact_demote_cold(self, tiered_dir, capsys):
        code, result = run_cli(capsys, "storage", "compact",
                               str(tiered_dir), "--demote-cold")
        assert code == 0
        assert all(seg["kind"] == "cold" for seg in result["segments"])
