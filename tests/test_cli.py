"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    output = capsys.readouterr().out
    return code, json.loads(output)


@pytest.fixture()
def value_file(tmp_path):
    rng = np.random.default_rng(0)
    path = tmp_path / "values.csv"
    np.savetxt(path, rng.lognormal(1.0, 1.0, 5000))
    return path


@pytest.fixture()
def sketch_file(tmp_path, value_file, capsys):
    path = tmp_path / "sketch.msk"
    code, _ = run_cli(capsys, "sketch", "build", str(value_file),
                      "-o", str(path), "--k", "10")
    assert code == 0
    return path


class TestSketchCommands:
    def test_build_reports_metadata(self, tmp_path, value_file, capsys):
        out = tmp_path / "s.msk"
        code, result = run_cli(capsys, "sketch", "build", str(value_file),
                               "-o", str(out))
        assert code == 0
        assert result["count"] == 5000
        assert result["size_bytes"] < 250
        assert out.exists()

    def test_build_without_log_moments(self, tmp_path, value_file, capsys):
        out = tmp_path / "s.msk"
        code, result = run_cli(capsys, "sketch", "build", str(value_file),
                               "-o", str(out), "--no-log")
        assert code == 0
        _, info = run_cli(capsys, "sketch", "info", str(out))
        assert info["log_moments"] is False

    def test_merge_and_query(self, tmp_path, capsys):
        rng = np.random.default_rng(1)
        data = rng.normal(10, 2, 8000)
        paths = []
        for i, chunk in enumerate(np.split(data, 4)):
            values = tmp_path / f"v{i}.csv"
            np.savetxt(values, chunk)
            sketch = tmp_path / f"s{i}.msk"
            run_cli(capsys, "sketch", "build", str(values), "-o", str(sketch))
            paths.append(str(sketch))
        merged = tmp_path / "merged.msk"
        code, result = run_cli(capsys, "sketch", "merge", *paths,
                               "-o", str(merged))
        assert code == 0 and result["count"] == 8000
        code, result = run_cli(capsys, "sketch", "query", str(merged),
                               "--phi", "0.5", "0.9")
        assert code == 0
        assert result["quantiles"]["0.5"] == pytest.approx(10.0, abs=0.3)

    def test_threshold(self, sketch_file, capsys):
        code, result = run_cli(capsys, "sketch", "threshold", str(sketch_file),
                               "--t", "1e9", "--phi", "0.99")
        assert code == 0
        assert result["exceeds"] is False
        assert result["decided_by"] == "simple"

    def test_bounds(self, sketch_file, capsys):
        code, result = run_cli(capsys, "sketch", "bounds", str(sketch_file),
                               "--t", "3.0")
        assert code == 0
        assert 0 <= result["rtt"]["lower"] <= result["rtt"]["upper"] <= 5000
        assert result["rtt"]["upper"] - result["rtt"]["lower"] <= \
            result["markov"]["upper"] - result["markov"]["lower"] + 1e-6

    def test_info_reports_selection(self, sketch_file, capsys):
        code, result = run_cli(capsys, "sketch", "info", str(sketch_file))
        assert code == 0
        assert result["k"] == 10
        assert "selected_k1" in result

    def test_missing_file_is_structured_error(self, capsys):
        code, result = run_cli(capsys, "sketch", "info", "/nonexistent.msk")
        assert code == 2
        assert "error" in result


class TestDatasetCommands:
    def test_list(self, capsys):
        code, result = run_cli(capsys, "datasets", "list")
        assert code == 0
        assert "milan" in result["datasets"]

    def test_stats(self, capsys):
        code, result = run_cli(capsys, "datasets", "stats", "exponential",
                               "--rows", "20000")
        assert code == 0
        assert result["generated"]["mean"] == pytest.approx(1.0, rel=0.1)
        assert result["paper"]["mean"] == 1.0

    def test_generate(self, tmp_path, capsys):
        out = tmp_path / "data.csv"
        code, result = run_cli(capsys, "datasets", "generate", "power",
                               "-o", str(out), "--rows", "5000")
        assert code == 0 and result["rows"] == 5000
        assert np.loadtxt(out).size == 5000

    def test_unknown_dataset_is_structured_error(self, capsys):
        code, result = run_cli(capsys, "datasets", "stats", "nope")
        assert code == 1
        assert "DatasetError" in result["error"]
