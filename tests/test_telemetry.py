"""Tests for the repro.telemetry runtime plane.

Covers the three promises telemetry makes:

* **mergeable metrics** — the log-linear histogram folds partials in any
  order or tree shape to a byte-identical result (integer bucket adds
  only, no float sum), and its quantile estimates honor the documented
  ``2**(1/(2S)) - 1`` relative error bound vs the exact rank statistic;
* **connected traces** — spans nest on one thread via the context var,
  cross thread pools via explicit parents, cross process boundaries via
  detached spans adopted from node partials, and phase spans agree
  *exactly* with the ``QueryTimings`` the API reports;
* **near-zero disabled cost** — with the plane off, queries and ingest
  record no spans and no metrics (the ≤3%/≤10% latency gates live in
  ``benchmarks/bench_telemetry.py``).
"""

import json
import random
import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import QueryService, QuerySpec
from repro.cluster import ClusterCoordinator
from repro.datacube import CubeSchema, DataCube
from repro.druid import MomentsSketchAggregator
from repro.ingest import IngestSession
from repro.storage import ColdSpec, TieredStore
from repro.summaries.moments_summary import MomentsSummary
from repro.telemetry import (TELEMETRY, Counter, Gauge, LogHistogram,
                             MetricsRegistry, SlowQueryLog, Tracer,
                             build_trace_tree, load_metrics, render_json,
                             render_prometheus, render_trace_tree)

K = 8


@pytest.fixture()
def telemetry():
    """Enable a fresh telemetry plane; always disable + clear afterwards."""
    TELEMETRY.enable(reset=True, slow_query_threshold_seconds=None)
    yield TELEMETRY
    TELEMETRY.disable()
    TELEMETRY.reset()


@pytest.fixture()
def disabled_telemetry():
    TELEMETRY.disable()
    TELEMETRY.reset()
    yield TELEMETRY
    TELEMETRY.disable()
    TELEMETRY.reset()


def fresh_cube(k=K):
    cube = DataCube(CubeSchema(("d",)), lambda: MomentsSummary(k=k))
    rng = np.random.default_rng(3)
    values = rng.lognormal(1.0, 1.0, 2000)
    cube.ingest([(np.arange(values.size) % 8).astype(int)], values)
    return cube


# ----------------------------------------------------------------------
# LogHistogram: mergeable metrics
# ----------------------------------------------------------------------

samples = st.lists(
    st.one_of(st.floats(min_value=1e-6, max_value=1e6,
                        allow_nan=False, allow_infinity=False),
              st.just(0.0),
              st.floats(min_value=-1e6, max_value=-1e-6,
                        allow_nan=False, allow_infinity=False)),
    min_size=0, max_size=60)


def hist_of(values):
    h = LogHistogram()
    h.observe_many(values)
    return h


class TestLogHistogram:
    def test_basic_counts(self):
        h = hist_of([0.0, 0.0, 1.5, -2.0, 3.0])
        assert h.count == 5
        assert h.zeros == 2
        assert h.min == -2.0
        assert h.max == 3.0

    def test_rejects_non_finite(self):
        h = LogHistogram()
        with pytest.raises(ValueError):
            h.observe(float("nan"))
        with pytest.raises(ValueError):
            h.observe(float("inf"))

    @given(a=samples, b=samples)
    @settings(max_examples=50, deadline=None)
    def test_merge_commutes(self, a, b):
        left = hist_of(a).merge(hist_of(b))
        right = hist_of(b).merge(hist_of(a))
        assert left == right
        assert left.to_partial() == right.to_partial()

    @given(a=samples, b=samples, c=samples)
    @settings(max_examples=50, deadline=None)
    def test_merge_associates(self, a, b, c):
        left = hist_of(a).merge(hist_of(b)).merge(hist_of(c))
        right = hist_of(a).merge(hist_of(b).merge(hist_of(c)))
        assert left == right
        assert left.to_partial() == right.to_partial()

    @given(chunks=st.lists(samples, min_size=1, max_size=8),
           seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=40, deadline=None)
    def test_fold_order_invariance(self, chunks, seed):
        """Shuffled partial folds are byte-identical to one-shot build."""
        single = hist_of([v for chunk in chunks for v in chunk])
        partials = [hist_of(chunk).to_partial() for chunk in chunks]
        random.Random(seed).shuffle(partials)
        folded = LogHistogram()
        for blob in partials:
            folded.merge_partial(blob)
        assert folded == single
        assert folded.to_partial() == single.to_partial()

    def test_sixteen_node_fold_bit_identical(self):
        """The ISSUE acceptance gate: 16 node partials fold to the same
        bytes as the single-process histogram, in any tree shape."""
        rng = np.random.default_rng(0)
        values = rng.lognormal(-5.0, 1.5, 16 * 200)  # latency-like
        single = hist_of(values)
        partials = [hist_of(values[i * 200:(i + 1) * 200]).to_partial()
                    for i in range(16)]
        # Linear fold, reversed fold, and pairwise-tree fold.
        for order in (partials, partials[::-1]):
            linear = LogHistogram()
            for blob in order:
                linear.merge_partial(blob)
            assert linear.to_partial() == single.to_partial()
        tier = [LogHistogram.from_partial(blob) for blob in partials]
        while len(tier) > 1:
            tier = [tier[i].merge(tier[i + 1]) for i in range(0, len(tier), 2)]
        assert tier[0].to_partial() == single.to_partial()

    def test_partial_round_trip(self):
        h = hist_of([0.0, 0.25, 7.5, -3.0, 1e-5])
        assert LogHistogram.from_partial(h.to_partial()) == h
        assert LogHistogram.from_dict(h.to_dict()) == h

    @given(values=st.lists(st.floats(min_value=1e-6, max_value=1e6,
                                     allow_nan=False, allow_infinity=False),
                           min_size=1, max_size=200),
           q=st.sampled_from([0.0, 0.5, 0.9, 0.99, 1.0]))
    @settings(max_examples=60, deadline=None)
    def test_quantile_error_bound(self, values, q):
        """Estimates stay within the documented relative error of the
        exact rank statistic (numpy's ``inverted_cdf`` percentile)."""
        h = hist_of(values)
        estimate = h.quantile(q)
        exact = float(np.percentile(values, q * 100, method="inverted_cdf"))
        bound = h.relative_error_bound  # 2**(1/(2S)) - 1 ~ 4.4% at S=8
        assert abs(estimate - exact) <= bound * exact + 1e-12

    def test_quantile_clamped_to_min_max(self):
        h = hist_of([2.0, 3.0, 1000.0])
        assert h.quantile(0.0) >= h.min
        assert h.quantile(1.0) <= h.max

    def test_error_bound_value_documented(self):
        # The module docstring promises ~4.4% at the default S=8.
        assert LogHistogram().relative_error_bound == \
            pytest.approx(2 ** (1 / 16) - 1)
        assert LogHistogram().relative_error_bound < 0.045


# ----------------------------------------------------------------------
# Counters, gauges, registry
# ----------------------------------------------------------------------

class TestRegistry:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("hits", kind="a").inc()
        reg.counter("hits", kind="a").inc(2)
        reg.gauge("depth").set(7.0)
        reg.gauge("depth").add(-2.0)
        assert reg.counter("hits", kind="a").value == 3
        assert reg.gauge("depth").value == 5.0

    def test_label_sets_are_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("hits", kind="a").inc()
        reg.counter("hits", kind="b").inc(5)
        assert reg.counter("hits", kind="a").value == 1
        assert reg.counter("hits", kind="b").value == 5

    def test_type_conflicts_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_dict_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("hits", kind="a").inc(3)
        reg.gauge("depth").set(1.5)
        reg.histogram("lat", route="p").observe_many([0.01, 0.02, 0.4])
        clone = MetricsRegistry.from_dict(reg.to_dict())
        assert clone.to_dict() == reg.to_dict()

    def test_merge_folds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("hits").inc(2)
        b.counter("hits").inc(5)
        a.histogram("lat").observe(0.1)
        b.histogram("lat").observe(0.2)
        a.merge(b)
        assert a.counter("hits").value == 7
        assert a.histogram("lat").count == 2


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------

class TestTracer:
    def test_nesting_via_context(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        assert tracer.current_span() is None
        spans = tracer.spans()
        assert [s["name"] for s in spans] == ["inner", "outer"]

    def test_explicit_parent_across_threads(self):
        """Thread pools do not inherit context vars; explicit parents
        must still yield one connected trace."""
        tracer = Tracer()
        with tracer.span("root") as root:
            captured = tracer.current_span()
            results = []

            def work():
                with tracer.span("child", parent=captured) as child:
                    results.append((child.trace_id, child.parent_id))

            threads = [threading.Thread(target=work) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert results == [(root.trace_id, root.span_id)] * 4

    def test_detached_span_not_recorded_until_adopted(self):
        tracer = Tracer()
        span = tracer.span("remote", parent=None, detached=True)
        payload = span.end()
        assert tracer.spans() == []
        tracer.adopt(payload)
        assert [s["name"] for s in tracer.spans()] == ["remote"]

    def test_record_uses_explicit_duration_and_start(self):
        tracer = Tracer()
        payload = tracer.record("phase", 0.125, parent=None,
                                start_monotonic=42.0, route="batched")
        assert payload["duration_seconds"] == 0.125
        assert payload["start_monotonic"] == 42.0
        assert payload["attributes"] == {"route": "batched"}

    def test_ring_capacity_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            with tracer.span(f"s{i}", parent=None):
                pass
        assert [s["name"] for s in tracer.spans()] == ["s2", "s3", "s4"]
        assert tracer.spans_recorded == 5
        assert tracer.spans_dropped == 2

    def test_error_status_and_event(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed") as span:
                span.add_event("checkpoint", step=1)
                raise RuntimeError("boom")
        (payload,) = tracer.spans()
        assert payload["status"] == "error"
        assert "RuntimeError" in payload["attributes"]["error"]
        assert payload["events"][0]["name"] == "checkpoint"
        assert payload["events"][0]["offset_seconds"] >= 0.0

    def test_export_jsonl(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a", parent=None):
            with tracer.span("b"):
                pass
        path = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(str(path)) == 2
        lines = [json.loads(line)
                 for line in path.read_text().strip().splitlines()]
        assert {line["name"] for line in lines} == {"a", "b"}

    def test_tree_building_and_rendering(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            root.add_event("failover", node="n0")
            with tracer.span("leaf"):
                pass
        roots = build_trace_tree(tracer.spans())
        assert len(roots) == 1
        assert roots[0]["name"] == "root"
        assert [c["name"] for c in roots[0]["children"]] == ["leaf"]
        lines = render_trace_tree(tracer.spans())
        assert lines[0].startswith("root")
        assert "!failover" in lines[0]
        assert lines[1].startswith("  leaf")


# ----------------------------------------------------------------------
# Slow-query log, renderers
# ----------------------------------------------------------------------

class TestSlowLogAndRenderers:
    def test_slowlog_threshold(self):
        tracer = Tracer()
        log = SlowQueryLog(threshold_seconds=0.5, capacity=2)
        fast = tracer.record("query", 0.1, parent=None)
        slow = tracer.record("query", 0.9, parent=None)
        assert not log.consider(fast, tracer)
        assert log.consider(slow, tracer)
        assert SlowQueryLog().consider(slow, tracer) is False  # disabled
        (entry,) = log.entries()
        assert entry["trace_id"] == slow["trace_id"]
        assert entry["duration_seconds"] == 0.9
        assert entry["spans"]  # span tree captured from the ring

    def test_slowlog_capacity_keeps_newest(self):
        tracer = Tracer()
        log = SlowQueryLog(threshold_seconds=0.0, capacity=2)
        for i in range(4):
            log.consider(tracer.record("query", float(i), parent=None),
                         tracer)
        assert log.captured == 4
        assert [e["duration_seconds"] for e in log.entries()] == [2.0, 3.0]

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.counter("queries_total", backend="cube").inc(4)
        reg.gauge("depth").set(2.5)
        reg.histogram("query_seconds", kind="quantile").observe_many(
            [0.01, 0.02, 0.03])
        text = render_prometheus(reg)
        assert '# TYPE repro_queries_total counter' in text
        assert 'repro_queries_total{backend="cube"} 4' in text
        assert '# TYPE repro_depth gauge' in text
        assert '# TYPE repro_query_seconds summary' in text
        assert 'quantile="0.99"' in text
        assert 'repro_query_seconds_count{kind="quantile"} 3' in text

    def test_render_json_and_load_metrics(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("hits").inc(2)
        raw = tmp_path / "metrics.json"
        raw.write_text(render_json(reg))
        snap = tmp_path / "snapshot.json"
        snap.write_text(json.dumps({"enabled": True,
                                    "metrics": reg.to_dict()}))
        traj = tmp_path / "traj.json"
        traj.write_text(json.dumps(
            {"runs": [{"name": "old"},
                      {"telemetry": {"metrics": reg.to_dict()}}]}))
        for path in (raw, snap, traj):
            loaded = MetricsRegistry.from_dict(load_metrics(str(path)))
            assert loaded.counter("hits").value == 2
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"runs": [{"name": "no-telemetry"}]}))
        with pytest.raises(ValueError):
            load_metrics(str(empty))


# ----------------------------------------------------------------------
# Query integration: phase accounting
# ----------------------------------------------------------------------

class TestQueryIntegration:
    def test_disabled_mode_records_nothing(self, disabled_telemetry):
        service = QueryService(cube=fresh_cube())
        service.execute(QuerySpec(kind="quantile", quantiles=(0.5,)))
        assert disabled_telemetry.tracer.spans() == []
        assert len(disabled_telemetry.registry) == 0

    def test_phase_spans_equal_query_timings(self, telemetry):
        """Satellite (a): span durations and QueryTimings must agree."""
        service = QueryService(cube=fresh_cube())
        spec = QuerySpec(kind="group_by", quantiles=(0.5, 0.9),
                         group_dimension="d")
        response = service.execute(spec)
        spans = {s["name"]: s for s in telemetry.tracer.spans()}
        assert set(spans) >= {"query", "query.plan", "query.merge",
                              "query.solve"}
        timings = response.timings
        assert spans["query.plan"]["duration_seconds"] == \
            timings.planner_seconds
        assert spans["query.merge"]["duration_seconds"] == \
            timings.merge_seconds
        assert spans["query.solve"]["duration_seconds"] == \
            timings.solve_seconds
        root = spans["query"]
        for name in ("query.plan", "query.merge", "query.solve"):
            assert spans[name]["trace_id"] == root["trace_id"]
            assert spans[name]["parent_id"] == root["span_id"]
        # Group routes must report real planner time, not the old 0.0
        # default (locate + merge phases are timed inside the engines).
        assert timings.planner_seconds >= 0.0
        assert timings.merge_seconds > 0.0

    def test_query_metrics_recorded(self, telemetry):
        service = QueryService(cube=fresh_cube())
        spec = QuerySpec(kind="quantile", quantiles=(0.5,))
        service.execute_batch([spec, spec])
        reg = telemetry.registry
        hits = [(name, labels, metric.value)
                for name, labels, metric in reg.items()
                if name == "queries_total"]
        assert sum(v for _, _, v in hits) == 2
        (hist,) = [metric for name, _, metric in reg.items()
                   if name == "query_seconds"]
        assert hist.count == 2

    def test_slow_query_capture_via_runtime(self, telemetry):
        telemetry.slow_queries.threshold_seconds = 0.0
        service = QueryService(cube=fresh_cube())
        service.execute(QuerySpec(kind="quantile", quantiles=(0.5,)))
        (entry,) = telemetry.slow_queries.entries()
        assert entry["root"] == "query"
        assert {s["name"] for s in entry["spans"]} >= {"query", "query.solve"}


# ----------------------------------------------------------------------
# Cluster integration: connected trace across the pool and the wire
# ----------------------------------------------------------------------

def make_cluster(nodes=3, shards=8, replication=2):
    return ClusterCoordinator(
        dimensions=("cell",),
        aggregators={"m": MomentsSketchAggregator(k=K)},
        num_shards=shards, replication=replication, granularity=1.0,
        nodes=[f"n{i}" for i in range(nodes)])


def ingest_cluster(cluster, rows=2000, cells=10, seed=5):
    rng = np.random.default_rng(seed)
    values = rng.lognormal(1.0, 1.0, rows)
    dims = (np.arange(rows) % cells).astype(int)
    cluster.ingest(cluster.shard_ids([dims]).astype(float), [dims], values)


class TestClusterIntegration:
    @given(shards=st.integers(min_value=2, max_value=12),
           nodes=st.integers(min_value=3, max_value=4),
           kill=st.booleans())
    @settings(max_examples=8, deadline=None)
    def test_single_connected_trace_tree(self, shards, nodes, kill):
        """ISSUE acceptance gate: broker -> surviving replicas -> solve
        forms ONE trace tree, with failovers as span events."""
        TELEMETRY.enable(reset=True)
        try:
            cluster = make_cluster(nodes=nodes, shards=shards)
            ingest_cluster(cluster)
            if kill:
                cluster.fail_node("n0", repair=False)
            service = QueryService(cluster=cluster)
            response = service.execute(
                QuerySpec(kind="quantile", quantiles=(0.5, 0.99),
                          measure="m"))
            assert response.count == 2000

            spans = TELEMETRY.tracer.spans()
            trace_ids = {s["trace_id"] for s in spans}
            assert len(trace_ids) == 1  # one connected trace
            by_id = {s["span_id"]: s for s in spans}
            by_name = {}
            for s in spans:
                by_name.setdefault(s["name"], []).append(s)
            assert set(by_name) >= {"query", "cluster.scatter",
                                    "cluster.node", "cluster.shard",
                                    "query.solve"}
            (root,) = by_name["query"]
            (scatter,) = by_name["cluster.scatter"]
            assert scatter["parent_id"] == root["span_id"]
            for node_span in by_name["cluster.node"]:
                assert node_span["parent_id"] == scatter["span_id"]
            for shard_span in by_name["cluster.shard"]:
                parent = by_id[shard_span["parent_id"]]
                assert parent["name"] == "cluster.node"
            # One span per shard that actually held data (cells hash
            # into shards, so some of the `shards` slots can be empty).
            scanned = sum(
                metric.value for name, _, metric
                in TELEMETRY.registry.items()
                if name == "cluster_shards_scanned_total")
            assert len(by_name["cluster.shard"]) == scanned
            assert 1 <= scanned <= shards
            # No orphans: every parent_id points into the same trace.
            for s in spans:
                assert s["parent_id"] is None or s["parent_id"] in by_id

            events = [e for e in scatter["events"] if e["name"] == "failover"]
            if kill:
                assert events and events[0]["node"] == "n0"
                assert events[0]["shards"] >= 1
                failovers = [metric.value for name, labels, metric
                             in TELEMETRY.registry.items()
                             if name == "cluster_failover_routes_total"]
                assert sum(failovers) >= 1
            else:
                assert not events
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()

    def test_shard_scan_histogram_folded_from_partials(self, telemetry):
        cluster = make_cluster(nodes=3, shards=8)
        ingest_cluster(cluster)
        service = QueryService(cluster=cluster)
        service.execute(QuerySpec(kind="quantile", quantiles=(0.5,),
                                  measure="m"))
        (hist,) = [metric for name, _, metric in telemetry.registry.items()
                   if name == "cluster_shard_scan_seconds"]
        scanned = sum(metric.value
                      for name, _, metric in telemetry.registry.items()
                      if name == "cluster_shards_scanned_total")
        assert hist.count == scanned >= 1  # one observation per shard scan

    def test_group_scatter_reports_partial_bytes(self, telemetry):
        cluster = make_cluster(nodes=3, shards=8)
        ingest_cluster(cluster)
        service = QueryService(cluster=cluster)
        service.execute(QuerySpec(kind="group_by", quantiles=(0.5,),
                                  measure="m", group_dimension="cell"))
        values = {labels["kind"]: metric.value
                  for name, labels, metric in telemetry.registry.items()
                  if name == "cluster_partial_bytes_total"}
        assert values.get("group", 0) > 0


# ----------------------------------------------------------------------
# Ingest + storage integration
# ----------------------------------------------------------------------

class TestIngestStorageIntegration:
    def test_ingest_flush_span_and_counters(self, telemetry):
        cube = DataCube(CubeSchema(("d",)), lambda: MomentsSummary(k=K))
        session = IngestSession(cube)
        values = np.ones(500)
        session.append_columns(values, dims=[np.arange(500) % 4])
        session.flush()
        session.close()
        reg = telemetry.registry
        rows = [metric.value for name, _, metric in reg.items()
                if name == "ingest_rows_total"]
        assert sum(rows) == 500
        flushes = [s for s in telemetry.tracer.spans()
                   if s["name"] == "ingest.flush"]
        assert flushes and flushes[0]["attributes"]["rows"] == 500

    def test_storage_spans_and_gauges(self, telemetry, tmp_path):
        with TieredStore(tmp_path / "tiers", k=K, dimensions=("cell",),
                         hot_budget_bytes=2000) as store:
            rng = np.random.default_rng(1)
            for _ in range(4):
                store.ingest_columns([np.arange(50) % 7],
                                     rng.lognormal(1.0, 1.0, 50))
            store.seal()
            store.demote(count=1, spec=ColdSpec())
        names = {s["name"] for s in telemetry.tracer.spans()}
        assert "storage.seal" in names
        assert "storage.demote" in names
        gauges = {name: metric.value
                  for name, _, metric in telemetry.registry.items()
                  if isinstance(metric, Gauge)}
        assert "storage_segments" in gauges
        assert "storage_hot_budget_occupancy" in gauges
        assert "storage_compaction_debt_rows" in gauges
        counters = {name: metric.value
                    for name, _, metric in telemetry.registry.items()
                    if isinstance(metric, Counter)}
        assert counters.get("storage_seals_total", 0) >= 1
        assert counters.get("storage_demotions_total", 0) >= 1


# ----------------------------------------------------------------------
# Harness integration
# ----------------------------------------------------------------------

class TestHarnessIntegration:
    def test_record_carries_telemetry_snapshot(self, telemetry, tmp_path):
        from repro.harness import ExperimentSpec, run_experiment

        spec = ExperimentSpec(name="tele-test", rows=1200, cells=6,
                              backends=("cube",), duration_seconds=0.5,
                              target_qps=40.0, paced=False, oracle=False,
                              seed=0)
        record = run_experiment(spec, trajectory_path=None)
        snap = record["telemetry"]
        assert snap["enabled"] is True
        assert snap["spans_recorded"] > 0
        metrics = MetricsRegistry.from_dict(snap["metrics"])
        totals = [metric.value for name, _, metric in metrics.items()
                  if name == "queries_total"]
        assert sum(totals) > 0

    def test_record_omits_telemetry_when_disabled(self, disabled_telemetry):
        from repro.harness import ExperimentSpec, run_experiment

        spec = ExperimentSpec(name="tele-off", rows=800, cells=4,
                              backends=("cube",), duration_seconds=0.3,
                              target_qps=20.0, paced=False, oracle=False,
                              seed=0)
        record = run_experiment(spec, trajectory_path=None)
        assert "telemetry" not in record
