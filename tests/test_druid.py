"""Tests for the Druid-like engine and its aggregator plug-ins."""

import numpy as np
import pytest

from repro.core.errors import QueryError
from repro.druid import (
    DoubleSumAggregator,
    DruidEngine,
    MomentsSketchAggregator,
    StreamingHistogramAggregator,
    registry,
)


@pytest.fixture(scope="module")
def engine():
    rng = np.random.default_rng(0)
    n = 30_000
    engine = DruidEngine(
        dimensions=("grid", "country"),
        aggregators=registry(moment_orders=(10,), histogram_bins=(100,)),
        granularity=3600.0,
        processing_threads=2,
    )
    timestamps = rng.uniform(0, 48 * 3600, n)
    grid = rng.integers(0, 25, n)
    country = rng.choice(["US", "CA", "MX"], n)
    values = rng.lognormal(1.0, 1.0, n)
    engine.ingest(timestamps, [grid, country], values)
    engine._test_data = (timestamps, grid, country, values)  # type: ignore[attr-defined]
    return engine


class TestIngestion:
    def test_rollup_by_hour_and_dimensions(self, engine):
        timestamps, grid, country, values = engine._test_data
        hours = np.floor(timestamps / 3600).astype(int)
        expected = len({(h, g, c) for h, g, c in zip(hours, grid, country)})
        assert engine.num_cells == expected

    def test_segments_partition_by_chunk(self, engine):
        assert len(engine.segments) <= 48
        for chunk, segment in engine.segments.items():
            assert segment.chunk == chunk


class TestQueries:
    def test_sum_query_exact(self, engine):
        *_, values = engine._test_data
        result = engine.query("sum")
        assert result.value == pytest.approx(values.sum(), rel=1e-9)
        assert result.cells_scanned == engine.num_cells

    def test_quantile_query_accuracy(self, engine):
        *_, values = engine._test_data
        result = engine.query("momentsSketch@10", q=0.99)
        truth = np.quantile(values, 0.99)
        assert result.value == pytest.approx(truth, rel=0.1)

    def test_histogram_aggregator_answers(self, engine):
        *_, values = engine._test_data
        result = engine.query("S-Hist@100", q=0.5)
        assert result.value == pytest.approx(np.quantile(values, 0.5), rel=0.2)

    def test_filtered_query(self, engine):
        timestamps, grid, country, values = engine._test_data
        result = engine.query("sum", filters={"country": "US"})
        assert result.value == pytest.approx(values[country == "US"].sum(), rel=1e-9)

    def test_interval_query(self, engine):
        timestamps, grid, country, values = engine._test_data
        result = engine.query("sum", interval=(0.0, 6 * 3600 - 1e-6))
        mask = timestamps < 6 * 3600
        assert result.value == pytest.approx(values[mask].sum(), rel=1e-9)

    def test_unknown_aggregator_rejected(self, engine):
        with pytest.raises(QueryError):
            engine.query("hyperloglog")

    def test_unknown_dimension_rejected(self, engine):
        with pytest.raises(QueryError):
            engine.query("sum", filters={"planet": "earth"})

    def test_no_matching_cells_rejected(self, engine):
        with pytest.raises(QueryError):
            engine.query("sum", filters={"country": "ZZ"})

    def test_group_by(self, engine):
        timestamps, grid, country, values = engine._test_data
        groups = engine.group_by("sum", "country")
        for name in np.unique(country):
            assert groups[name] == pytest.approx(values[country == name].sum(),
                                                 rel=1e-9)

    def test_single_thread_matches_threaded(self, engine):
        threaded = engine.query("momentsSketch@10", q=0.9)
        engine.processing_threads = 1
        try:
            single = engine.query("momentsSketch@10", q=0.9)
        finally:
            engine.processing_threads = 2
        assert single.value == pytest.approx(threaded.value, rel=1e-6)


class TestAggregatorPlugins:
    def test_registry_names(self):
        factories = registry(moment_orders=(10,), histogram_bins=(10, 100))
        assert set(factories) == {"sum", "momentsSketch@10", "S-Hist@10", "S-Hist@100"}

    def test_sum_state_merge_type_check(self):
        sum_state = DoubleSumAggregator().create()
        sketch_state = MomentsSketchAggregator(k=4).create()
        with pytest.raises(QueryError):
            sum_state.merge(sketch_state)

    def test_state_copy_isolated(self):
        state = StreamingHistogramAggregator(max_bins=10).create()
        state.aggregate(np.asarray([1.0, 2.0]))
        clone = state.copy()
        clone.aggregate(np.asarray([100.0]))
        assert state.summary.count == 2
        assert clone.summary.count == 3


class TestPackedMoments:
    @pytest.fixture(scope="class")
    def engine_pair(self):
        rng = np.random.default_rng(3)
        n = 20_000
        timestamps = rng.uniform(0, 12 * 3600, n)
        grid = rng.integers(0, 10, n)
        country = rng.choice(["US", "CA"], n)
        values = rng.lognormal(1.0, 1.0, n)
        engines = []
        for packed in (True, False):
            engine = DruidEngine(
                dimensions=("grid", "country"),
                aggregators=registry(moment_orders=(8,), histogram_bins=()),
                granularity=3600.0,
                processing_threads=1,
                packed_moments=packed,
            )
            engine.ingest(timestamps, [grid, country], values)
            engines.append(engine)
        return engines

    def test_segments_hold_packed_stores(self, engine_pair):
        packed, plain = engine_pair
        assert packed.packed_moments and not plain.packed_moments
        for segment in packed.segments.values():
            store = segment.packed["momentsSketch@8"]
            assert len(store) == segment.num_cells
            assert "momentsSketch@8" not in next(iter(segment.cells.values()))
        for segment in plain.segments.values():
            assert not segment.packed
            assert "momentsSketch@8" in next(iter(segment.cells.values()))

    def test_num_cells_agree(self, engine_pair):
        packed, plain = engine_pair
        assert packed.num_cells == plain.num_cells

    def test_query_matches_object_layout(self, engine_pair):
        packed, plain = engine_pair
        for kwargs in ({}, {"filters": {"country": "US"}},
                       {"interval": (0.0, 4 * 3600 - 1e-6)}):
            a = packed.query("momentsSketch@8", q=0.95, **kwargs)
            b = plain.query("momentsSketch@8", q=0.95, **kwargs)
            assert a.cells_scanned == b.cells_scanned
            assert a.value == pytest.approx(b.value, rel=1e-9)

    def test_group_by_matches_object_layout(self, engine_pair):
        packed, plain = engine_pair
        a = packed.group_by("momentsSketch@8", "country", q=0.9)
        b = plain.group_by("momentsSketch@8", "country", q=0.9)
        assert set(a) == set(b)
        for key in a:
            assert a[key] == pytest.approx(b[key], rel=1e-9)

    def test_packed_group_states_expose_summaries(self, engine_pair):
        packed, _ = engine_pair
        states = packed.group_states("momentsSketch@8", "country")
        for state in states.values():
            assert state.summary.sketch.count > 0

    def test_packed_query_no_match_rejected(self, engine_pair):
        packed, _ = engine_pair
        with pytest.raises(QueryError):
            packed.query("momentsSketch@8", filters={"country": "ZZ"})

    def test_sum_path_unaffected_by_packing(self, engine_pair):
        packed, plain = engine_pair
        assert packed.query("sum").value == pytest.approx(
            plain.query("sum").value, rel=1e-12)
