"""Unit tests for the Chebyshev toolkit against closed forms."""

import numpy as np
import pytest

from repro.core import chebyshev as ch


class TestCoefficientTable:
    def test_low_orders_match_textbook(self):
        table = ch.chebyshev_coefficient_table(4)
        # T_0 = 1, T_1 = x, T_2 = 2x^2 - 1, T_3 = 4x^3 - 3x, T_4 = 8x^4 - 8x^2 + 1
        assert table[0].tolist() == [1, 0, 0, 0, 0]
        assert table[1].tolist() == [0, 1, 0, 0, 0]
        assert table[2].tolist() == [-1, 0, 2, 0, 0]
        assert table[3].tolist() == [0, -3, 0, 4, 0]
        assert table[4].tolist() == [1, 0, -8, 0, 8]

    def test_leading_coefficient_is_power_of_two(self):
        table = ch.chebyshev_coefficient_table(12)
        for i in range(1, 13):
            assert table[i, i] == 2.0 ** (i - 1)

    def test_negative_order_rejected(self):
        with pytest.raises(ValueError):
            ch.chebyshev_coefficient_table(-1)


class TestEvaluation:
    def test_matches_trigonometric_identity(self):
        u = np.linspace(-1, 1, 101)
        for order in (0, 1, 2, 5, 9, 16):
            expected = np.cos(order * np.arccos(u))
            np.testing.assert_allclose(ch.eval_chebyshev(order, u), expected,
                                       atol=1e-12)

    def test_series_evaluation_clenshaw(self):
        coeffs = np.array([0.5, -1.0, 0.25, 2.0])
        u = np.linspace(-1, 1, 41)
        expected = sum(c * ch.eval_chebyshev(i, u) for i, c in enumerate(coeffs))
        np.testing.assert_allclose(ch.eval_chebyshev_series(coeffs, u), expected,
                                   atol=1e-13)

    def test_empty_series_is_zero(self):
        assert ch.eval_chebyshev_series(np.zeros(0), np.array([0.3])) == 0.0

    def test_values_slightly_outside_support_stay_finite(self):
        u = np.array([-1.0 - 1e-12, 1.0 + 1e-12])
        assert np.all(np.isfinite(ch.eval_chebyshev(8, u)))


class TestNodesAndWeights:
    def test_nodes_are_lobatto_points(self):
        nodes = ch.chebyshev_nodes(8)
        np.testing.assert_allclose(nodes, np.cos(np.pi * np.arange(9) / 8))
        assert nodes[0] == 1.0 and nodes[-1] == -1.0

    def test_odd_or_nonpositive_sizes_rejected(self):
        for bad in (0, -2, 3, 7):
            with pytest.raises(ValueError):
                ch.chebyshev_nodes(bad)
            with pytest.raises(ValueError):
                ch.clenshaw_curtis_weights(bad)

    def test_weights_sum_to_interval_length(self):
        for n in (2, 8, 64, 256):
            assert ch.clenshaw_curtis_weights(n).sum() == pytest.approx(2.0)

    def test_quadrature_exact_for_polynomials(self):
        n = 16
        nodes = ch.chebyshev_nodes(n)
        weights = ch.clenshaw_curtis_weights(n)
        for degree in range(n + 1):
            integral = float(np.dot(weights, nodes ** degree))
            exact = 0.0 if degree % 2 else 2.0 / (degree + 1)
            assert integral == pytest.approx(exact, abs=1e-13)

    def test_quadrature_converges_for_smooth_function(self):
        exact = np.exp(1) - np.exp(-1)
        for n in (8, 16, 32):
            nodes = ch.chebyshev_nodes(n)
            weights = ch.clenshaw_curtis_weights(n)
            approx = float(np.dot(weights, np.exp(nodes)))
            assert approx == pytest.approx(exact, abs=max(10.0 ** -(n / 2), 1e-14))


class TestInterpolation:
    def test_interpolant_hits_nodes(self):
        n = 32
        nodes = ch.chebyshev_nodes(n)
        values = np.sin(3 * nodes) + nodes ** 2
        coeffs = ch.interpolation_coefficients(values)
        np.testing.assert_allclose(ch.eval_chebyshev_series(coeffs, nodes),
                                   values, atol=1e-12)

    def test_interpolant_accurate_between_nodes(self):
        n = 64
        nodes = ch.chebyshev_nodes(n)
        coeffs = ch.interpolation_coefficients(np.exp(nodes))
        u = np.linspace(-1, 1, 333)
        np.testing.assert_allclose(ch.eval_chebyshev_series(coeffs, u),
                                   np.exp(u), atol=1e-12)

    def test_single_value_rejected(self):
        with pytest.raises(ValueError):
            ch.interpolation_coefficients(np.array([1.0]))


class TestIntegration:
    def test_integrate_series_closed_form(self):
        # T_0 integrates to 2, T_2 to -2/3, odd orders to 0.
        assert ch.integrate_series(np.array([1.0])) == pytest.approx(2.0)
        assert ch.integrate_series(np.array([0.0, 1.0])) == pytest.approx(0.0)
        assert ch.integrate_series(np.array([0.0, 0.0, 1.0])) == pytest.approx(-2.0 / 3.0)

    def test_antiderivative_differentiates_back(self):
        coeffs = np.array([0.2, -0.8, 0.6, 0.1, -0.3])
        anti = ch.antiderivative_series(coeffs)
        u = np.linspace(-0.95, 0.95, 21)
        h = 1e-6
        derivative = (ch.eval_chebyshev_series(anti, u + h)
                      - ch.eval_chebyshev_series(anti, u - h)) / (2 * h)
        np.testing.assert_allclose(derivative,
                                   ch.eval_chebyshev_series(coeffs, u), atol=1e-7)

    def test_antiderivative_consistent_with_integrate_series(self):
        coeffs = np.array([0.4, 0.3, -0.2, 0.05])
        anti = ch.antiderivative_series(coeffs)
        span = (ch.eval_chebyshev_series(anti, np.asarray(1.0))
                - ch.eval_chebyshev_series(anti, np.asarray(-1.0)))
        assert span == pytest.approx(ch.integrate_series(coeffs))


class TestAlgebra:
    def test_multiply_series_matches_pointwise_product(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=5)
        b = rng.normal(size=7)
        product = ch.multiply_series(a, b)
        u = np.linspace(-1, 1, 61)
        np.testing.assert_allclose(
            ch.eval_chebyshev_series(product, u),
            ch.eval_chebyshev_series(a, u) * ch.eval_chebyshev_series(b, u),
            atol=1e-12)

    def test_multiply_with_empty_is_empty(self):
        assert ch.multiply_series(np.zeros(0), np.array([1.0])).size == 0

    def test_basis_conversion_roundtrip(self):
        rng = np.random.default_rng(1)
        mono = rng.normal(size=9)
        back = ch.chebyshev_to_monomial(ch.monomial_to_chebyshev(mono))
        np.testing.assert_allclose(back, mono, atol=1e-9)

    def test_monomial_to_chebyshev_known_case(self):
        # x^2 = (T_0 + T_2) / 2
        np.testing.assert_allclose(ch.monomial_to_chebyshev(np.array([0.0, 0.0, 1.0])),
                                   [0.5, 0.0, 0.5], atol=1e-14)
