"""Tests for the lesion-study estimators (Figure 10's comparison set)."""

import numpy as np
import pytest

from repro.core import MomentsSketch
from repro.core.errors import EstimationError
from repro.estimators import (
    LESION_ESTIMATORS,
    build_problem,
    make_estimator,
)
from repro.workload.cells import quantile_errors

PHIS = np.linspace(0.05, 0.95, 10)


@pytest.fixture(scope="module")
def gaussian_case():
    rng = np.random.default_rng(0)
    data = rng.normal(0, 1, 40_000)
    sketch = MomentsSketch.from_data(data, k=8)
    return data, sketch, build_problem(sketch, k=8, use_log=False)


@pytest.fixture(scope="module")
def lognormal_case():
    rng = np.random.default_rng(1)
    data = rng.lognormal(1.0, 1.2, 40_000)
    sketch = MomentsSketch.from_data(data, k=8)
    return data, sketch, build_problem(sketch, k=8, use_log=True)


def errors_for(name, data, sketch, problem):
    estimator = make_estimator(name)
    if hasattr(estimator, "bind"):
        estimator.bind(sketch)
    estimates = estimator.quantiles(problem, PHIS)
    return float(np.mean(quantile_errors(np.sort(data), estimates, PHIS)))


class TestProblemConstruction:
    def test_moments_scaled_to_unit_support(self, gaussian_case):
        _, _, problem = gaussian_case
        assert problem.moments[0] == 1.0
        assert np.all(np.abs(problem.moments) <= 1.0 + 1e-9)

    def test_log_problem_requires_positive_data(self):
        sketch = MomentsSketch.from_data([-1.0, 1.0], k=4)
        with pytest.raises(EstimationError):
            build_problem(sketch, use_log=True)

    def test_too_many_moments_rejected(self, gaussian_case):
        _, sketch, _ = gaussian_case
        with pytest.raises(EstimationError):
            build_problem(sketch, k=99)

    def test_to_data_units_roundtrip(self, lognormal_case):
        data, _, problem = lognormal_case
        x = problem.to_data_units(np.asarray([-1.0, 1.0]))
        assert x[0] == pytest.approx(data.min(), rel=1e-9)
        assert x[1] == pytest.approx(data.max(), rel=1e-9)


class TestEstimatorRegistry:
    def test_all_names_constructible(self):
        for name in LESION_ESTIMATORS:
            assert make_estimator(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_estimator("oracle")


@pytest.mark.parametrize("name", LESION_ESTIMATORS)
class TestAllEstimatorsRun:
    def test_produces_monotone_in_range_estimates(self, name, gaussian_case):
        data, sketch, problem = gaussian_case
        estimator = make_estimator(name)
        if hasattr(estimator, "bind"):
            estimator.bind(sketch)
        estimates = estimator.quantiles(problem, PHIS)
        assert np.all(np.diff(estimates) >= -1e-6)
        assert estimates.min() >= data.min() - 1e-6
        assert estimates.max() <= data.max() + 1e-6


class TestLesionShape:
    """The Figure 10 orderings this reproduction must preserve."""

    def test_maxent_family_beats_closed_forms(self, gaussian_case):
        data, sketch, problem = gaussian_case
        opt = errors_for("opt", data, sketch, problem)
        mnat = errors_for("mnat", data, sketch, problem)
        assert opt * 5 < mnat

    def test_maxent_variants_agree(self, gaussian_case):
        data, sketch, problem = gaussian_case
        opt = errors_for("opt", data, sketch, problem)
        bfgs = errors_for("bfgs", data, sketch, problem)
        assert abs(opt - bfgs) < 5e-3

    def test_gaussian_estimator_wins_on_gaussian_only(self, gaussian_case,
                                                      lognormal_case):
        g_data, g_sketch, g_problem = gaussian_case
        gaussian_on_gaussian = errors_for("gaussian", g_data, g_sketch, g_problem)
        assert gaussian_on_gaussian < 0.02
        # On a skewed dataset in linear space it falls apart.
        rng = np.random.default_rng(2)
        data = rng.gamma(0.7, 2.0, 40_000)
        sketch = MomentsSketch.from_data(data, k=8)
        problem = build_problem(sketch, k=8, use_log=False)
        assert errors_for("gaussian", data, sketch, problem) > 0.03

    def test_opt_faster_than_generic_convex(self, lognormal_case):
        import time
        data, sketch, problem = lognormal_case
        opt = make_estimator("opt").bind(sketch)
        generic = make_estimator("cvx-maxent")
        start = time.perf_counter()
        opt.quantiles(problem, PHIS)
        opt_seconds = time.perf_counter() - start
        start = time.perf_counter()
        generic.quantiles(problem, PHIS)
        generic_seconds = time.perf_counter() - start
        assert opt_seconds < generic_seconds

    def test_unbound_solver_estimators_raise(self, gaussian_case):
        _, _, problem = gaussian_case
        with pytest.raises(EstimationError):
            make_estimator("opt").quantiles(problem, PHIS)
        with pytest.raises(EstimationError):
            make_estimator("bfgs").quantiles(problem, PHIS)


class TestDiscretizedEstimators:
    def test_svd_matches_moments_weakly(self, gaussian_case):
        data, sketch, problem = gaussian_case
        assert errors_for("svd", data, sketch, problem) < 0.05

    def test_cvx_min_flat_density_on_uniform(self):
        rng = np.random.default_rng(3)
        data = rng.uniform(0, 1, 40_000)
        sketch = MomentsSketch.from_data(data, k=6)
        problem = build_problem(sketch, k=6)
        assert errors_for("cvx-min", data, sketch, problem) < 0.03
