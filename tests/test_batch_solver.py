"""Tests for the batched max-entropy estimation layer (PR 5).

The layer's contract, asserted here:

* batched quantile estimates match the scalar path within 1e-6 relative
  (on this stack they agree far tighter);
* moment selection is bit-identical between the scalar greedy search and
  the frontier-batched search;
* a problem's batched result is independent of its batch-mates (masks,
  compaction, and tabulation bucketing never couple problems);
* stragglers (near-discrete cells) fall back to the scalar solver and
  surface the canonical outcome without disturbing their batch-mates;
* the vectorized markov/rtt bounds equal their scalar counterparts
  element-wise, so batched cascade decisions are bit-identical;
* the query service reports one batched solve (not one per cell).
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (ColumnarMoments, MomentsSketch, QuantileEstimator,
                        SolverConfig, estimate_quantiles_batch, fit_estimators,
                        solve_batch)
from repro.core.bounds import (markov_bound, markov_bound_batch, rtt_bound,
                               rtt_bound_batch)
from repro.core.cascade import ThresholdCascade
from repro.core.errors import ConvergenceError
from repro.core.selector import select_moments, select_moments_batch
from repro.core.solver import build_bases_batch, solve

CONFIG = SolverConfig()
QS = np.array([0.01, 0.1, 0.5, 0.9, 0.99])


def make_sketches(seed=0, count=12, k=8):
    """A mixed bag of shapes: lognormal, uniform, gamma, shifted normal."""
    rng = np.random.default_rng(seed)
    out = []
    for i in range(count):
        kind = i % 4
        if kind == 0:
            data = rng.lognormal(1.0, 1.0, 150)
        elif kind == 1:
            data = rng.uniform(-5.0, 7.0, 150)
        elif kind == 2:
            data = rng.gamma(2.0, 3.0, 150)
        else:
            data = rng.normal(1000.0, 5.0, 150)
        out.append(MomentsSketch.from_data(data, k=k))
    return out


dataset_strategy = st.lists(
    st.floats(min_value=1e-3, max_value=1e5,
              allow_nan=False, allow_infinity=False),
    min_size=8, max_size=120)


class TestSolveBatch:
    def test_matches_scalar_solver(self):
        sketches = make_sketches()
        selections = select_moments_batch(sketches, CONFIG)
        bases = build_bases_batch(sketches,
                                  [s.k1 for s in selections],
                                  [s.k2 for s in selections], CONFIG)
        outcome = solve_batch(bases, CONFIG)
        assert outcome.batched == len(bases)
        for basis, result in zip(bases, outcome.results):
            scalar = solve(basis, CONFIG)
            np.testing.assert_allclose(result.theta, scalar.theta,
                                       rtol=1e-9, atol=1e-12)
            assert result.converged and scalar.converged

    def test_empty_batch(self):
        outcome = solve_batch([], CONFIG)
        assert outcome.results == [] and outcome.batched == 0


class TestFitEstimators:
    def test_estimates_within_tolerance_of_scalar(self):
        sketches = make_sketches(seed=1, count=20)
        estimators, errors, report = fit_estimators(sketches, CONFIG)
        assert report.failures == 0 and all(e is None for e in errors)
        for sketch, estimator in zip(sketches, estimators):
            scalar = QuantileEstimator.fit(sketch, config=CONFIG)
            np.testing.assert_allclose(estimator.quantiles(QS),
                                       scalar.quantiles(QS), rtol=1e-6)

    def test_selection_bit_identical(self):
        sketches = make_sketches(seed=2, count=16)
        assert (select_moments_batch(sketches, CONFIG)
                == [select_moments(s, CONFIG) for s in sketches])

    def test_point_mass_rows(self):
        constant = MomentsSketch.from_data([7.5] * 40, k=6)
        smooth = make_sketches(seed=3, count=3, k=6)
        estimators, _, report = fit_estimators([constant] + smooth, CONFIG)
        assert report.point_masses == 1
        assert estimators[0].quantile(0.5) == 7.5

    def test_straggler_fallback_matches_scalar_outcome(self):
        # Two-point data: the solver cannot converge (Figure 8); the
        # batch must surface the same ConvergenceError the scalar path
        # raises, without disturbing its batch-mates.
        hard = MomentsSketch.from_data([0.0] * 900 + [10.0] * 100, k=8)
        smooth = make_sketches(seed=4, count=6)
        mixed = smooth[:3] + [hard] + smooth[3:]
        estimators, errors, report = fit_estimators(mixed, CONFIG)
        assert estimators[3] is None
        assert isinstance(errors[3], ConvergenceError)
        assert report.stragglers >= 1 and report.failures == 1
        with pytest.raises(ConvergenceError):
            QuantileEstimator.fit(hard, config=CONFIG)
        solo, _, _ = fit_estimators(smooth, CONFIG)
        others = [e for i, e in enumerate(estimators) if i != 3]
        for a, b in zip(others, solo):
            assert np.array_equal(a.quantiles(QS), b.quantiles(QS))

    def test_results_independent_of_batch_composition(self):
        # Convergence masks and tabulation buckets are per-problem: a
        # sketch solved alone, in a small batch, or in a large shuffled
        # batch yields the same estimator output bit for bit.
        sketches = make_sketches(seed=5, count=10)
        alone, _, _ = fit_estimators(sketches[:1], CONFIG)
        small, _, _ = fit_estimators(sketches[:4], CONFIG)
        shuffled = list(reversed(sketches))
        large, _, _ = fit_estimators(shuffled, CONFIG)
        target = large[len(sketches) - 1]  # sketches[0] in reversed order
        assert np.array_equal(alone[0].quantiles(QS), small[0].quantiles(QS))
        assert np.array_equal(alone[0].quantiles(QS), target.quantiles(QS))

    @given(st.lists(dataset_strategy, min_size=2, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_property_batched_matches_scalar(self, datasets):
        sketches = [MomentsSketch.from_data(d, k=6) for d in datasets]
        batched = estimate_quantiles_batch(sketches, QS, CONFIG)
        for row, sketch in enumerate(sketches):
            try:
                scalar = QuantileEstimator.fit(
                    sketch, config=CONFIG, allow_backoff=True).quantiles(QS)
            except ConvergenceError:
                from repro.core import safe_estimate_quantiles
                scalar = safe_estimate_quantiles(sketch, QS, config=CONFIG)
            np.testing.assert_allclose(batched[row], scalar,
                                       rtol=1e-6, atol=1e-9)


class TestBatchedBounds:
    @given(st.lists(dataset_strategy, min_size=1, max_size=5),
           st.floats(min_value=-10.0, max_value=2e5,
                     allow_nan=False, allow_infinity=False))
    @settings(max_examples=40, deadline=None)
    def test_bounds_equal_scalar_elementwise(self, datasets, t):
        sketches = [MomentsSketch.from_data(d, k=6) for d in datasets]
        block = ColumnarMoments.from_sketches(sketches)
        markov = markov_bound_batch(block, t)
        rtt = rtt_bound_batch(block, t)
        for row, sketch in enumerate(sketches):
            scalar_markov = markov_bound(sketch, t)
            assert (markov.lower[row], markov.upper[row]) \
                == (scalar_markov.lower, scalar_markov.upper)
            scalar_rtt = rtt_bound(sketch, t)
            assert (rtt.lower[row], rtt.upper[row]) \
                == (scalar_rtt.lower, scalar_rtt.upper)

    def test_per_row_thresholds(self):
        sketches = make_sketches(seed=6, count=8)
        block = ColumnarMoments.from_sketches(sketches)
        ts = np.array([float(np.mean([s.min, s.max])) for s in sketches])
        batch = rtt_bound_batch(block, ts)
        for row, (sketch, t) in enumerate(zip(sketches, ts)):
            scalar = rtt_bound(sketch, float(t))
            assert (batch.lower[row], batch.upper[row]) \
                == (scalar.lower, scalar.upper)

    def test_mixed_log_validity(self):
        with_log = MomentsSketch.from_data([1.0, 2.0, 3.0, 9.0], k=5)
        poisoned = MomentsSketch.from_data([-1.0, 2.0, 5.0], k=5)
        block = ColumnarMoments.from_sketches([with_log, poisoned])
        batch = markov_bound_batch(block, 2.5)
        for row, sketch in enumerate([with_log, poisoned]):
            scalar = markov_bound(sketch, 2.5)
            assert (batch.lower[row], batch.upper[row]) \
                == (scalar.lower, scalar.upper)


class TestCascadeBatch:
    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_decisions_and_stages_match_scalar(self, q):
        sketches = make_sketches(seed=7, count=16)
        lo = min(s.min for s in sketches)
        hi = max(s.max for s in sketches)
        for t in np.linspace(lo - 1.0, hi + 1.0, 7):
            scalar_cascade = ThresholdCascade(config=CONFIG)
            batch_cascade = ThresholdCascade(config=CONFIG)
            scalar = [scalar_cascade.evaluate(s, float(t), q)
                      for s in sketches]
            batched = batch_cascade.evaluate_batch(sketches, float(t), q)
            assert [o.result for o in scalar] == [o.result for o in batched]
            assert [o.stage for o in scalar] == [o.stage for o in batched]

    def test_stats_accounting_matches_scalar(self):
        sketches = make_sketches(seed=8, count=10)
        t = float(np.median([s.max for s in sketches]))
        scalar_cascade = ThresholdCascade(config=CONFIG)
        batch_cascade = ThresholdCascade(config=CONFIG)
        for s in sketches:
            scalar_cascade.evaluate(s, t, 0.9)
        batch_cascade.evaluate_batch(sketches, t, 0.9)
        assert batch_cascade.stats.queries == scalar_cascade.stats.queries
        for name in ("simple", "markov", "rtt", "maxent"):
            assert (batch_cascade.stats.stages[name].entered
                    == scalar_cascade.stats.stages[name].entered)
            assert (batch_cascade.stats.stages[name].resolved
                    == scalar_cascade.stats.stages[name].resolved)

    def test_accepts_columnar_moments(self):
        sketches = make_sketches(seed=9, count=6)
        block = ColumnarMoments.from_sketches(sketches)
        t = float(np.mean([s.max for s in sketches]))
        a = ThresholdCascade(config=CONFIG).evaluate_batch(block, t, 0.95)
        b = ThresholdCascade(config=CONFIG).evaluate_batch(sketches, t, 0.95)
        assert [(o.result, o.stage) for o in a] \
            == [(o.result, o.stage) for o in b]

    def test_degraded_near_discrete_cells(self):
        hard = MomentsSketch.from_data([0.0] * 900 + [10.0] * 100, k=8)
        outcomes = ThresholdCascade(config=CONFIG).evaluate_batch(
            [hard, hard], 5.0, 0.95)
        scalar = ThresholdCascade(config=CONFIG).evaluate(hard, 5.0, 0.95)
        assert all(o.result == scalar.result and o.stage == scalar.stage
                   for o in outcomes)


class TestCascadeQRename:
    def test_phi_keyword_deprecated(self):
        sketch = MomentsSketch.from_data([1.0, 2.0, 3.0, 10.0], k=5)
        cascade = ThresholdCascade(config=CONFIG)
        with pytest.warns(DeprecationWarning):
            legacy = cascade.threshold(sketch, 5.0, phi=0.9)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            canonical = cascade.threshold(sketch, 5.0, 0.9)
        assert legacy == canonical

    def test_phi_and_q_together_rejected(self):
        from repro.core.errors import QueryError
        sketch = MomentsSketch.from_data([1.0, 2.0], k=4)
        with pytest.raises(QueryError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                ThresholdCascade(config=CONFIG).evaluate(
                    sketch, 1.5, 0.5, phi=0.5)


class TestServiceBatchedRouting:
    @pytest.fixture(scope="class")
    def cube(self):
        from repro.datacube import CubeSchema, DataCube
        from repro.summaries.moments_summary import MomentsSummary
        rng = np.random.default_rng(11)
        values = rng.lognormal(1.0, 1.0, 40 * 60)
        dim = np.repeat(np.arange(40), 60)
        cube = DataCube(CubeSchema(("g",)), lambda: MomentsSummary(k=8))
        cube.ingest([dim], values)
        return cube

    def test_group_by_single_batched_solve(self, cube):
        from repro.api import QueryService, QuerySpec, qkey
        spec = QuerySpec(kind="group_by", quantiles=(0.9,),
                         group_dimension="g")
        batched = QueryService(cube=cube, batched=True).execute(spec)
        scalar = QueryService(cube=cube, batched=False).execute(spec)
        assert batched.timings.solve_route == "batched"
        assert batched.timings.solve_calls == 1
        assert scalar.timings.solve_route == "scalar"
        assert scalar.timings.solve_calls == len(scalar.groups)
        for group, payload in scalar.groups.items():
            assert batched.groups[group][qkey(0.9)] == pytest.approx(
                payload[qkey(0.9)], rel=1e-6)

    def test_top_n_identical_and_single_solve(self, cube):
        from repro.api import QueryService, QuerySpec
        spec = QuerySpec(kind="top_n", quantiles=(0.99,), n=5,
                         group_dimension="g")
        batched = QueryService(cube=cube, batched=True).execute(spec)
        scalar = QueryService(cube=cube, batched=False).execute(spec)
        assert [v for v, _ in batched.top] == [v for v, _ in scalar.top]
        assert batched.timings.solve_calls == 1

    def test_threshold_count_identical(self, cube):
        from repro.api import QueryService, QuerySpec, qkey
        rollup = cube.rollup()
        t = float(rollup.quantile(0.95))
        spec = QuerySpec(kind="threshold_count", quantiles=(0.99,),
                         thresholds=(t,), group_dimension="g")
        batched = QueryService(cube=cube, batched=True).execute(spec)
        scalar = QueryService(cube=cube, batched=False).execute(spec)
        assert batched.value == scalar.value
        assert {g: o[qkey(t)]["stage"] for g, o in batched.groups.items()} \
            == {g: o[qkey(t)]["stage"] for g, o in scalar.groups.items()}
        assert batched.timings.solve_calls == 1

    def test_top_n_maxent_over_non_moments_summaries(self):
        # top_n never consulted spec.estimator: estimator="maxent" over
        # an S-Hist aggregator must still rank, not raise (regression).
        from repro.api import QueryService, QuerySpec
        from repro.druid import DruidEngine, registry
        rng = np.random.default_rng(21)
        engine = DruidEngine(dimensions=("d",),
                             aggregators={"h": registry()["S-Hist@100"]})
        engine.ingest(rng.uniform(0, 3600, 2000),
                      [rng.integers(0, 6, 2000)],
                      rng.lognormal(1.0, 1.0, 2000))
        spec = QuerySpec(kind="top_n", quantiles=(0.9,), n=3, measure="h",
                         group_dimension="d", estimator="maxent")
        for batched in (True, False):
            response = QueryService(druid=engine, batched=batched).execute(spec)
            assert len(response.top) == 3

    def test_batched_respects_summary_config(self):
        # The batched fit must use each summary's own SolverConfig (like
        # summary.quantiles does), not silently the service default.
        from repro.api import PackedStoreBackend, QueryService, QuerySpec, qkey
        from repro.store import PackedSketchStore
        coarse = SolverConfig(grid_size=64, cdf_grid_size=128)
        sketches = make_sketches(seed=22, count=8)
        store = PackedSketchStore.from_sketches(sketches)
        keys = [(i,) for i in range(len(sketches))]
        backend = PackedStoreBackend(store, keys=keys, dimensions=("cell",),
                                     config=coarse)
        spec = QuerySpec(kind="group_by", quantiles=(0.9,),
                         group_dimension="cell")
        batched = QueryService(cells=backend, batched=True).execute(spec)
        scalar = QueryService(cells=backend, batched=False).execute(spec)
        for group, payload in scalar.groups.items():
            assert batched.groups[group][qkey(0.9)] == pytest.approx(
                payload[qkey(0.9)], rel=1e-9)

    def test_threshold_scalar_fallback_reports_scalar_route(self):
        # Mixed/non-moments groups fall back to the per-cell cascade;
        # the timings must say so instead of claiming a batched solve.
        from repro.api import QueryService, QuerySpec
        from repro.druid import DruidEngine, registry
        rng = np.random.default_rng(23)
        engine = DruidEngine(dimensions=("d",),
                             aggregators={"h": registry()["S-Hist@100"]})
        engine.ingest(rng.uniform(0, 3600, 1000),
                      [rng.integers(0, 4, 1000)],
                      rng.lognormal(1.0, 1.0, 1000))
        spec = QuerySpec(kind="threshold_count", quantiles=(0.99,),
                         thresholds=(5.0,), group_dimension="d", measure="h")
        response = QueryService(druid=engine, batched=True).execute(spec)
        assert response.timings.solve_route == "scalar"

    def test_timings_round_trip_with_solve_route(self, cube):
        from repro.api import QueryService, QuerySpec, QueryResponse
        spec = QuerySpec(kind="group_by", quantiles=(0.5,),
                         group_dimension="g")
        response = QueryService(cube=cube).execute(spec)
        text = response.to_json()
        again = QueryResponse.from_json(text)
        assert again.to_json() == text
        assert again.timings.solve_route == "batched"
        assert again.timings.solve_calls == 1

    def test_group_quantiles_one_call(self, cube):
        from repro.api import qkey
        groups = cube.group_quantiles("g", (0.5, 0.99))
        assert len(groups) == 40
        for payload in groups.values():
            assert payload[qkey(0.5)] <= payload[qkey(0.99)]


class TestPackedStoreFeeds:
    def test_moment_columns_roundtrip(self):
        from repro.store import PackedSketchStore
        sketches = make_sketches(seed=12, count=6, k=6)
        store = PackedSketchStore.from_sketches(sketches)
        block = store.moment_columns()
        assert len(block) == len(sketches)
        for row, sketch in enumerate(sketches):
            again = block.sketch_at(row)
            assert again.count == sketch.count
            np.testing.assert_array_equal(again.power_sums, sketch.power_sums)

    def test_moment_columns_subset_and_bounds(self):
        from repro.store import PackedSketchStore
        sketches = make_sketches(seed=13, count=8, k=6)
        store = PackedSketchStore.from_sketches(sketches)
        rows = np.array([1, 4, 6])
        block = store.moment_columns(rows)
        t = float(np.mean([s.max for s in sketches]))
        batch = markov_bound_batch(block, t)
        for position, row in enumerate(rows):
            scalar = markov_bound(sketches[row], t)
            assert (batch.lower[position], batch.upper[position]) \
                == (scalar.lower, scalar.upper)

    def test_group_bases_feed_solve_batch(self):
        from repro.store import PackedSketchStore
        sketches = make_sketches(seed=14, count=12, k=6)
        store = PackedSketchStore.from_sketches(sketches)
        keys = [i % 3 for i in range(len(sketches))]
        grouped = store.group_bases(np.arange(len(sketches)), keys, CONFIG)
        assert set(grouped) == {0, 1, 2}
        bases = [basis for _, basis in grouped.values() if basis is not None]
        outcome = solve_batch(bases, CONFIG)
        assert outcome.batched == len(bases)
        merged = store.batch_merge_by(np.arange(len(sketches)), keys)
        for key, (sketch, _) in grouped.items():
            assert sketch.count == merged[key].count
