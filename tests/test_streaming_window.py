"""Tests for the online streaming window monitor."""

import numpy as np
import pytest

from repro.window import TurnstileWindowProcessor, build_panes, inject_spikes
from repro.window.streaming import StreamingWindowMonitor


@pytest.fixture(scope="module")
def spiked_stream():
    rng = np.random.default_rng(0)
    values = rng.lognormal(1.0, 1.0, 30_000)
    values = inject_spikes(values, 500, list(range(20, 32)),
                           spike_value=5000.0, spike_fraction=0.1)
    return values


class TestIncrementalIngestion:
    def test_pane_boundaries_respected(self):
        monitor = StreamingWindowMonitor(pane_size=100, window_panes=3,
                                         threshold=1e9)
        monitor.ingest(np.ones(250))
        assert len(monitor.states) == 2          # two sealed panes
        assert len(monitor._open_values) == 50   # partial third pane

    def test_chunk_size_independence(self, spiked_stream):
        """Feeding one value at a time or in bulk yields identical panes."""
        bulk = StreamingWindowMonitor(pane_size=500, window_panes=4,
                                      threshold=1e9)
        bulk.ingest(spiked_stream[:5000])
        drip = StreamingWindowMonitor(pane_size=500, window_panes=4,
                                      threshold=1e9)
        for chunk in np.split(spiked_stream[:5000], 100):
            drip.ingest(chunk)
        assert len(bulk.states) == len(drip.states)
        np.testing.assert_allclose(bulk.current_window.power_sums,
                                   drip.current_window.power_sums, rtol=1e-9)

    def test_window_memory_bounded(self, spiked_stream):
        monitor = StreamingWindowMonitor(pane_size=500, window_panes=6,
                                         threshold=1e9)
        monitor.ingest(spiked_stream)
        assert len(monitor._panes) == 6
        assert monitor.current_window.count == 6 * 500

    def test_flush_partial_pane(self):
        monitor = StreamingWindowMonitor(pane_size=100, window_panes=2,
                                         threshold=1e9)
        monitor.ingest(np.ones(150))
        alert = monitor.flush()
        assert len(monitor.states) == 2
        assert monitor.current_window.count == 150
        assert alert is None

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            StreamingWindowMonitor(pane_size=0, window_panes=2, threshold=1.0)
        with pytest.raises(ValueError):
            StreamingWindowMonitor(pane_size=10, window_panes=0, threshold=1.0)


class TestAlerting:
    def test_matches_batch_processor(self, spiked_stream):
        """The live monitor must raise exactly the alerts the historical
        query over the same panes raises."""
        threshold, phi, w = 1500.0, 0.99, 12
        monitor = StreamingWindowMonitor(pane_size=500, window_panes=w,
                                         threshold=threshold, phi=phi)
        monitor.ingest(spiked_stream)
        batch = TurnstileWindowProcessor(
            build_panes(spiked_stream, 500), window_panes=w)
        batch_result = batch.query(threshold=threshold, q=phi)
        assert ({a.start_pane for a in monitor.alerts}
                == {a.start_pane for a in batch_result.alerts})
        assert monitor.alerts, "the spike must fire alerts"

    def test_callback_invoked(self, spiked_stream):
        fired = []
        monitor = StreamingWindowMonitor(pane_size=500, window_panes=12,
                                         threshold=1500.0, phi=0.99,
                                         on_alert=fired.append)
        monitor.ingest(spiked_stream)
        assert fired == monitor.alerts

    def test_no_alerts_before_full_window(self):
        monitor = StreamingWindowMonitor(pane_size=100, window_panes=10,
                                         threshold=0.0, phi=0.5)
        monitor.ingest(np.full(500, 10.0))  # five panes, window needs ten
        assert not monitor.alerts
        assert not monitor.window_ready


class TestPackedRing:
    def test_ring_slots_back_live_panes(self):
        rng = np.random.default_rng(0)
        monitor = StreamingWindowMonitor(pane_size=100, window_panes=4,
                                         threshold=1e12)
        monitor.ingest(rng.lognormal(1, 1, 1200))
        assert len(monitor._ring) == 5  # window_panes + 1 ring rows
        for pane in monitor._panes:
            slot = pane.index % 5
            assert np.shares_memory(pane.sketch.power_sums,
                                    monitor._ring.power_sums[slot])

    def test_recompute_window_matches_turnstile_state(self):
        rng = np.random.default_rng(1)
        monitor = StreamingWindowMonitor(pane_size=100, window_panes=4,
                                         threshold=1e12)
        monitor.ingest(rng.lognormal(1, 1, 2500))
        recomputed = monitor.recompute_window()
        live = monitor.current_window
        assert recomputed.count == live.count
        assert np.allclose(recomputed.power_sums, live.power_sums,
                           rtol=1e-9)

    def test_recompute_without_panes_rejected(self):
        monitor = StreamingWindowMonitor(pane_size=100, window_panes=4,
                                         threshold=1.0)
        with pytest.raises(ValueError):
            monitor.recompute_window()

    def test_resync_matches_default_alerts(self):
        rng = np.random.default_rng(2)
        values = inject_spikes(rng.lognormal(1, 1, 4000), pane_size=100,
                               spike_panes=[15, 16], spike_value=300.0)
        baseline = StreamingWindowMonitor(pane_size=100, window_panes=4,
                                          threshold=80.0)
        resynced = StreamingWindowMonitor(pane_size=100, window_panes=4,
                                          threshold=80.0, resync_every=3)
        baseline.ingest(values)
        resynced.ingest(values)
        assert ([(a.start_pane, a.end_pane) for a in resynced.alerts]
                == [(a.start_pane, a.end_pane) for a in baseline.alerts])
        assert resynced.alerts

    def test_resync_every_validates(self):
        with pytest.raises(ValueError):
            StreamingWindowMonitor(pane_size=10, window_panes=2,
                                   threshold=1.0, resync_every=-1)

    def test_flush_partial_pane_through_ring(self):
        rng = np.random.default_rng(3)
        monitor = StreamingWindowMonitor(pane_size=100, window_panes=3,
                                         threshold=1e12)
        monitor.ingest(rng.lognormal(1, 1, 450))
        monitor.flush()
        assert monitor._panes[-1].count == 50
        assert monitor.current_window.count == sum(
            p.count for p in monitor._panes)
