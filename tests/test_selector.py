"""Tests for the k1/k2 moment-selection heuristic (Section 4.3.1)."""

import numpy as np
import pytest

from repro.core import MomentsSketch, SolverConfig
from repro.core.selector import select_moments, stable_moment_counts


class TestStableCounts:
    def test_centered_data_gets_full_order(self):
        rng = np.random.default_rng(0)
        sketch = MomentsSketch.from_data(rng.uniform(-1, 1, 20_000), k=12)
        k1, k2 = stable_moment_counts(sketch)
        assert k1 == 12
        assert k2 == 0  # negative values: no log moments

    def test_offset_data_loses_moments(self):
        # Data on [20, 100]: c = 1.5, Appendix B predicts ~11-12 usable.
        rng = np.random.default_rng(1)
        sketch = MomentsSketch.from_data(rng.uniform(20, 100, 20_000), k=16)
        k1, _ = stable_moment_counts(sketch)
        assert k1 < 16

    def test_degenerate_support(self):
        sketch = MomentsSketch.from_data(np.full(10, 3.0), k=8)
        assert stable_moment_counts(sketch) == (1, 0)

    def test_log_counts_for_positive_data(self):
        rng = np.random.default_rng(2)
        sketch = MomentsSketch.from_data(rng.lognormal(0, 1, 20_000), k=10)
        _, k2 = stable_moment_counts(sketch)
        assert k2 > 0


class TestGreedySelection:
    def test_uses_many_moments_when_well_conditioned(self):
        rng = np.random.default_rng(3)
        sketch = MomentsSketch.from_data(rng.normal(0, 1, 30_000), k=10)
        selection = select_moments(sketch)
        assert selection.k1 + selection.k2 >= 8

    def test_condition_budget_respected(self):
        rng = np.random.default_rng(4)
        sketch = MomentsSketch.from_data(rng.lognormal(1, 1.5, 30_000), k=10)
        for budget in (50.0, 1e4):
            config = SolverConfig(max_condition_number=budget)
            selection = select_moments(sketch, config)
            assert selection.condition < budget

    def test_budgets_reported_condition_is_attained(self):
        # Greedy paths differ between budgets, so selected counts are not
        # strictly monotone; what must hold is that each selection's
        # reported condition number respects its own budget.
        rng = np.random.default_rng(5)
        sketch = MomentsSketch.from_data(rng.gamma(2, 1, 30_000), k=10)
        loose = select_moments(sketch, SolverConfig(max_condition_number=1e4))
        tight = select_moments(sketch, SolverConfig(max_condition_number=30.0))
        assert tight.condition < 30.0
        assert loose.condition < 1e4
        assert loose.k1 + loose.k2 >= 1 and tight.k1 + tight.k2 >= 1

    def test_use_log_false_excludes_log_moments(self):
        rng = np.random.default_rng(6)
        sketch = MomentsSketch.from_data(rng.lognormal(0, 1, 20_000), k=10)
        selection = select_moments(sketch, use_log=False)
        assert selection.k2 == 0

    def test_minimum_selection_is_one_standard_moment(self):
        sketch = MomentsSketch.from_data([1.0, 2.0, 3.0], k=4)
        selection = select_moments(sketch)
        assert selection.k1 >= 1
