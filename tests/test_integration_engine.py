"""Tests for the closed-form Chebyshev-product integration engine.

The Appendix A.2 implementation must agree with the default
Clenshaw-Curtis grid engine — both solve the same dual, differing only in
how integrals are evaluated.
"""

import numpy as np
import pytest

from repro.core import MomentsSketch, SolverConfig
from repro.core.errors import ConvergenceError
from repro.core.integration import (
    ChebyshevProductIntegrator,
    _mode_integrals,
    _product_integral_matrix,
    solve_with_products,
)
from repro.core.solver import build_basis, solve


@pytest.fixture(scope="module")
def cases():
    rng = np.random.default_rng(0)
    gauss = MomentsSketch.from_data(rng.normal(0, 1, 30_000), k=10)
    lognorm = MomentsSketch.from_data(rng.lognormal(1, 1.2, 30_000), k=10)
    expon = MomentsSketch.from_data(rng.exponential(1, 30_000), k=10)
    return {
        "linear/std": build_basis(gauss, 8, 0),
        "log/log": build_basis(lognorm, 0, 8),
        "log/mixed": build_basis(expon, 3, 5),
    }


class TestModeIntegrals:
    def test_closed_form(self):
        integrals = _mode_integrals(6)
        assert integrals[0] == pytest.approx(2.0)
        assert integrals[1] == 0.0
        assert integrals[2] == pytest.approx(-2.0 / 3.0)
        assert integrals[4] == pytest.approx(-2.0 / 15.0)

    def test_product_matrix_matches_quadrature(self):
        # M[m, k] must equal the integral of T_m * T_k over [-1, 1].
        from repro.core.chebyshev import (
            chebyshev_nodes,
            clenshaw_curtis_weights,
            eval_chebyshev,
        )
        nodes = chebyshev_nodes(64)
        weights = clenshaw_curtis_weights(64)
        matrix = _product_integral_matrix(5, 5)
        for m in range(5):
            for k in range(5):
                direct = float(np.dot(weights, eval_chebyshev(m, nodes)
                                      * eval_chebyshev(k, nodes)))
                assert matrix[m, k] == pytest.approx(direct, abs=1e-12)


class TestEngineAgreement:
    @pytest.mark.parametrize("case", ["linear/std", "log/log", "log/mixed"])
    def test_theta_matches_grid_engine(self, cases, case):
        basis = cases[case]
        grid = solve(basis)
        products = solve_with_products(basis)
        np.testing.assert_allclose(products.theta, grid.theta,
                                   atol=1e-6, rtol=1e-6)

    def test_density_coefficients_reproduce_density(self, cases):
        basis = cases["linear/std"]
        result = solve(basis)
        integrator = ChebyshevProductIntegrator.build(basis)
        coeffs = integrator.density_coefficients(result.theta)
        from repro.core.chebyshev import eval_chebyshev_series
        u = np.linspace(-1, 1, 33)
        np.testing.assert_allclose(eval_chebyshev_series(coeffs, u),
                                   result.density_on(u), rtol=1e-9, atol=1e-12)

    def test_gradient_matches_grid_quadrature(self, cases):
        basis = cases["log/mixed"]
        integrator = ChebyshevProductIntegrator.build(basis)
        theta = np.zeros(basis.size)
        theta[0] = np.log(0.5)
        _, gradient, hessian = integrator.objective_parts(theta)
        f = np.exp(theta @ basis.matrix)
        wf = basis.weights * f
        np.testing.assert_allclose(gradient, basis.matrix @ wf, atol=1e-9)
        np.testing.assert_allclose(hessian, (basis.matrix * wf) @ basis.matrix.T,
                                   atol=1e-9)

    def test_polynomial_basis_expansions_are_exact(self, cases):
        basis = cases["linear/std"]
        integrator = ChebyshevProductIntegrator.build(basis)
        # Basis image of T_0 against f=1-ish must equal mode integrals' use:
        # check that the linear-domain basis got exact unit expansions by
        # verifying the gradient of the uniform density is the uniform
        # Chebyshev moment vector.
        theta = np.zeros(basis.size)
        theta[0] = np.log(0.5)
        _, gradient, _ = integrator.objective_parts(theta)
        from repro.core.moments import uniform_chebyshev_moments
        np.testing.assert_allclose(gradient,
                                   uniform_chebyshev_moments(basis.k1),
                                   atol=1e-12)

    def test_discrete_data_still_fails(self):
        data = np.asarray([0.0, 1.0] * 400)
        sketch = MomentsSketch.from_data(data, k=8)
        basis = build_basis(sketch, 8, 0)
        with pytest.raises(ConvergenceError):
            solve_with_products(basis, SolverConfig(max_iterations=60))
