"""Cross-backend equivalence through one QuerySpec (the API's core promise).

The same synthetic dataset is pre-aggregated into identical 200-value
cells by four different systems — data cube, Druid engine, raw packed
store, and window panes — and queried through one unified
:class:`~repro.api.QuerySpec`.  Because every backend accumulates each
cell in a single vectorized pass and merges cells with the same strict
left fold, the merged raw moments must agree *bit for bit*, and the
estimates (solved from identical moments) must agree exactly with each
other and within tolerance of ground truth.
"""

import numpy as np
import pytest

from repro.api import QueryService, QuerySpec, qkey
from repro.cluster import ClusterCoordinator
from repro.datacube import CubeSchema, DataCube
from repro.druid import DruidEngine, MomentsSketchAggregator
from repro.summaries.moments_summary import MomentsSummary
from repro.window import build_panes
from repro.workload import build_packed_cells

CELL = 200
K = 10


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(42)
    return rng.lognormal(1.0, 1.2, 20_000)


@pytest.fixture(scope="module")
def service(data):
    cell_ids = np.arange(data.size) // CELL

    cube = DataCube(CubeSchema(("cell",)), lambda: MomentsSummary(k=K))
    cube.ingest([cell_ids], data)

    # One segment (all timestamps in chunk 0) so the broker's
    # per-segment fold degenerates to the same flat left fold as the
    # other backends.
    engine = DruidEngine(dimensions=("cell",),
                         aggregators={"m": MomentsSketchAggregator(k=K)},
                         granularity=1e12, processing_threads=1)
    engine.ingest(np.zeros(data.size), [cell_ids], data)

    packed = build_packed_cells(data, cell_size=CELL, k=K)
    panes = build_panes(data, pane_size=CELL, k=K)

    return (QueryService(cube=cube, druid=engine, packed=packed.store,
                         window=panes))

BACKENDS = ("cube", "druid", "packed", "window")


class TestCrossBackendEquivalence:
    @pytest.fixture(scope="class")
    def responses(self, service):
        spec = QuerySpec(kind="quantile",
                         quantiles=(0.1, 0.5, 0.9, 0.99),
                         report_moments=True)
        return {name: service.execute(spec, backend=name)
                for name in BACKENDS}

    def test_all_backends_scan_every_cell(self, responses, data):
        for response in responses.values():
            assert response.cells_scanned == data.size // CELL
            assert response.count == data.size
            assert response.route == "packed"

    def test_merged_moments_bit_for_bit(self, responses):
        reference = responses["cube"].moments
        for name in BACKENDS:
            moments = responses[name].moments
            assert moments["count"] == reference["count"]
            assert moments["min"] == reference["min"]
            assert moments["max"] == reference["max"]
            assert moments["power_sums"] == reference["power_sums"], name
            assert moments["log_sums"] == reference["log_sums"], name
            assert moments["log_valid"] is True

    def test_estimates_identical_across_backends(self, responses):
        reference = responses["cube"].estimates
        for name in BACKENDS:
            # Identical merged moments -> identical solves, so exact
            # equality (not approx) is required.
            assert responses[name].estimates == reference, name

    def test_estimates_near_ground_truth(self, responses, data):
        for q in (0.1, 0.5, 0.9, 0.99):
            truth = np.quantile(data, q)
            assert responses["cube"].estimates[qkey(q)] == pytest.approx(
                truth, rel=0.1), q

    def test_threshold_count_agrees(self, service, data):
        t = float(np.quantile(data, 0.95))
        spec = QuerySpec(kind="threshold_count", quantiles=(0.99,),
                         thresholds=(t,))
        answers = {name: service.execute(spec, backend=name).value
                   for name in BACKENDS}
        assert len(set(answers.values())) == 1

    def test_cdf_agrees(self, service, data):
        t = float(np.quantile(data, 0.5))
        spec = QuerySpec(kind="cdf", thresholds=(t,))
        answers = {name: service.execute(spec, backend=name).estimates[qkey(t)]
                   for name in BACKENDS}
        assert len(set(answers.values())) == 1
        assert answers["cube"] == pytest.approx(0.5, abs=0.1)

    def test_group_by_agrees_between_cube_druid_packed(self, service, data):
        cell_ids = np.arange(data.size) // CELL
        keys = [(int(i),) for i in range(data.size // CELL)]
        # Rebuild the packed backend with keys so it can group.
        from repro.api import PackedStoreBackend
        from repro.workload import build_packed_cells
        packed = build_packed_cells(data, cell_size=CELL, k=K)
        service.register("packed_keyed",
                         PackedStoreBackend(packed.store, keys=keys,
                                            dimensions=("cell",)))
        spec = QuerySpec(kind="group_by", quantiles=(0.9,),
                         group_dimension="cell")
        results = {}
        for name in ("cube", "druid", "packed_keyed"):
            response = service.execute(spec, backend=name)
            results[name] = {int(k): v[qkey(0.9)]
                             for k, v in response.groups.items()}
        assert results["cube"] == results["druid"] == results["packed_keyed"]
        assert len(results["cube"]) == data.size // CELL
        assert cell_ids.max() + 1 == len(results["cube"])


class TestClusterBitExactness:
    """ClusterBackend vs DruidBackend on the same data, bit for bit.

    The broker folds per-shard partials in ascending shard order; a
    single-process engine whose time chunks coincide with the cluster's
    shards folds per-segment partials in the same order, so the two
    answers must match exactly — including after a node failure, because
    replicas are bit-identical and shard partials are replica-independent.
    """

    @pytest.fixture(scope="class")
    def pair(self, data):
        cell_ids = np.arange(data.size) // CELL
        cluster = ClusterCoordinator(
            dimensions=("cell",),
            aggregators={"m": MomentsSketchAggregator(k=K)},
            num_shards=16, replication=2, granularity=1.0,
            nodes=["n0", "n1", "n2", "n3"])
        # Shard-aligned time chunks: reference segments == cluster shards.
        timestamps = cluster.shard_ids([cell_ids]).astype(float)
        cluster.ingest(timestamps, [cell_ids], data)
        engine = DruidEngine(dimensions=("cell",),
                             aggregators={"m": MomentsSketchAggregator(k=K)},
                             granularity=1.0, processing_threads=1)
        engine.ingest(timestamps, [cell_ids], data)
        return cluster, QueryService(cluster=cluster, druid=engine)

    def test_rollup_bit_exact(self, pair, data):
        _, service = pair
        spec = QuerySpec(kind="quantile", quantiles=(0.1, 0.5, 0.9, 0.99),
                         report_moments=True)
        ours = service.execute(spec, backend="cluster")
        theirs = service.execute(spec, backend="druid")
        assert ours.moments == theirs.moments
        assert ours.estimates == theirs.estimates
        assert ours.count == theirs.count == data.size
        assert ours.route == theirs.route == "packed"

    def test_group_by_bit_exact(self, pair):
        _, service = pair
        spec = QuerySpec(kind="group_by", quantiles=(0.9,),
                         group_dimension="cell")
        assert (service.execute(spec, backend="cluster").groups
                == service.execute(spec, backend="druid").groups)

    def test_rollup_bit_exact_after_node_failure(self, pair):
        cluster, service = pair
        spec = QuerySpec(kind="quantile", quantiles=(0.5, 0.99),
                         report_moments=True)
        theirs = service.execute(spec, backend="druid")
        cluster.fail_node("n3", repair=True)
        ours = service.execute(spec, backend="cluster")
        assert ours.moments == theirs.moments
        assert ours.estimates == theirs.estimates
