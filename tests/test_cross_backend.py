"""Cross-backend equivalence through one QuerySpec (the API's core promise).

The same synthetic dataset is pre-aggregated into identical 200-value
cells by four different systems — data cube, Druid engine, raw packed
store, and window panes — and queried through one unified
:class:`~repro.api.QuerySpec`.  Because every backend accumulates each
cell in a single vectorized pass and merges cells with the same strict
left fold, the merged raw moments must agree *bit for bit*, and the
estimates (solved from identical moments) must agree exactly with each
other and within tolerance of ground truth.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import QueryService, QuerySpec, qkey
from repro.cluster import ClusterCoordinator
from repro.datacube import CubeSchema, DataCube
from repro.druid import DruidEngine, MomentsSketchAggregator
from repro.ingest import IngestSession, IngestSpec, make_batch, \
    as_write_backend
from repro.store import PackedSketchStore
from repro.summaries.moments_summary import MomentsSummary
from repro.window import StreamingWindowMonitor, build_panes
from repro.workload import build_packed_cells

CELL = 200
K = 10


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(42)
    return rng.lognormal(1.0, 1.2, 20_000)


@pytest.fixture(scope="module")
def service(data):
    cell_ids = np.arange(data.size) // CELL

    cube = DataCube(CubeSchema(("cell",)), lambda: MomentsSummary(k=K))
    cube.ingest([cell_ids], data)

    # One segment (all timestamps in chunk 0) so the broker's
    # per-segment fold degenerates to the same flat left fold as the
    # other backends.
    engine = DruidEngine(dimensions=("cell",),
                         aggregators={"m": MomentsSketchAggregator(k=K)},
                         granularity=1e12, processing_threads=1)
    engine.ingest(np.zeros(data.size), [cell_ids], data)

    packed = build_packed_cells(data, cell_size=CELL, k=K)
    panes = build_panes(data, pane_size=CELL, k=K)

    return (QueryService(cube=cube, druid=engine, packed=packed.store,
                         window=panes))

BACKENDS = ("cube", "druid", "packed", "window")


class TestCrossBackendEquivalence:
    @pytest.fixture(scope="class")
    def responses(self, service):
        spec = QuerySpec(kind="quantile",
                         quantiles=(0.1, 0.5, 0.9, 0.99),
                         report_moments=True)
        return {name: service.execute(spec, backend=name)
                for name in BACKENDS}

    def test_all_backends_scan_every_cell(self, responses, data):
        for response in responses.values():
            assert response.cells_scanned == data.size // CELL
            assert response.count == data.size
            assert response.route == "packed"

    def test_merged_moments_bit_for_bit(self, responses):
        reference = responses["cube"].moments
        for name in BACKENDS:
            moments = responses[name].moments
            assert moments["count"] == reference["count"]
            assert moments["min"] == reference["min"]
            assert moments["max"] == reference["max"]
            assert moments["power_sums"] == reference["power_sums"], name
            assert moments["log_sums"] == reference["log_sums"], name
            assert moments["log_valid"] is True

    def test_estimates_identical_across_backends(self, responses):
        reference = responses["cube"].estimates
        for name in BACKENDS:
            # Identical merged moments -> identical solves, so exact
            # equality (not approx) is required.
            assert responses[name].estimates == reference, name

    def test_estimates_near_ground_truth(self, responses, data):
        for q in (0.1, 0.5, 0.9, 0.99):
            truth = np.quantile(data, q)
            assert responses["cube"].estimates[qkey(q)] == pytest.approx(
                truth, rel=0.1), q

    def test_threshold_count_agrees(self, service, data):
        t = float(np.quantile(data, 0.95))
        spec = QuerySpec(kind="threshold_count", quantiles=(0.99,),
                         thresholds=(t,))
        answers = {name: service.execute(spec, backend=name).value
                   for name in BACKENDS}
        assert len(set(answers.values())) == 1

    def test_cdf_agrees(self, service, data):
        t = float(np.quantile(data, 0.5))
        spec = QuerySpec(kind="cdf", thresholds=(t,))
        answers = {name: service.execute(spec, backend=name).estimates[qkey(t)]
                   for name in BACKENDS}
        assert len(set(answers.values())) == 1
        assert answers["cube"] == pytest.approx(0.5, abs=0.1)

    def test_group_by_agrees_between_cube_druid_packed(self, service, data):
        cell_ids = np.arange(data.size) // CELL
        keys = [(int(i),) for i in range(data.size // CELL)]
        # Rebuild the packed backend with keys so it can group.
        from repro.api import PackedStoreBackend
        from repro.workload import build_packed_cells
        packed = build_packed_cells(data, cell_size=CELL, k=K)
        service.register("packed_keyed",
                         PackedStoreBackend(packed.store, keys=keys,
                                            dimensions=("cell",)))
        spec = QuerySpec(kind="group_by", quantiles=(0.9,),
                         group_dimension="cell")
        results = {}
        for name in ("cube", "druid", "packed_keyed"):
            response = service.execute(spec, backend=name)
            results[name] = {int(k): v[qkey(0.9)]
                             for k, v in response.groups.items()}
        assert results["cube"] == results["druid"] == results["packed_keyed"]
        assert len(results["cube"]) == data.size // CELL
        assert cell_ids.max() + 1 == len(results["cube"])


class TestClusterBitExactness:
    """ClusterBackend vs DruidBackend on the same data, bit for bit.

    The broker folds per-shard partials in ascending shard order; a
    single-process engine whose time chunks coincide with the cluster's
    shards folds per-segment partials in the same order, so the two
    answers must match exactly — including after a node failure, because
    replicas are bit-identical and shard partials are replica-independent.
    """

    @pytest.fixture(scope="class")
    def pair(self, data):
        cell_ids = np.arange(data.size) // CELL
        cluster = ClusterCoordinator(
            dimensions=("cell",),
            aggregators={"m": MomentsSketchAggregator(k=K)},
            num_shards=16, replication=2, granularity=1.0,
            nodes=["n0", "n1", "n2", "n3"])
        # Shard-aligned time chunks: reference segments == cluster shards.
        timestamps = cluster.shard_ids([cell_ids]).astype(float)
        cluster.ingest(timestamps, [cell_ids], data)
        engine = DruidEngine(dimensions=("cell",),
                             aggregators={"m": MomentsSketchAggregator(k=K)},
                             granularity=1.0, processing_threads=1)
        engine.ingest(timestamps, [cell_ids], data)
        return cluster, QueryService(cluster=cluster, druid=engine)

    def test_rollup_bit_exact(self, pair, data):
        _, service = pair
        spec = QuerySpec(kind="quantile", quantiles=(0.1, 0.5, 0.9, 0.99),
                         report_moments=True)
        ours = service.execute(spec, backend="cluster")
        theirs = service.execute(spec, backend="druid")
        assert ours.moments == theirs.moments
        assert ours.estimates == theirs.estimates
        assert ours.count == theirs.count == data.size
        assert ours.route == theirs.route == "packed"

    def test_group_by_bit_exact(self, pair):
        _, service = pair
        spec = QuerySpec(kind="group_by", quantiles=(0.9,),
                         group_dimension="cell")
        assert (service.execute(spec, backend="cluster").groups
                == service.execute(spec, backend="druid").groups)

    def test_rollup_bit_exact_after_node_failure(self, pair):
        cluster, service = pair
        spec = QuerySpec(kind="quantile", quantiles=(0.5, 0.99),
                         report_moments=True)
        theirs = service.execute(spec, backend="druid")
        cluster.fail_node("n3", repair=True)
        ours = service.execute(spec, backend="cluster")
        assert ours.moments == theirs.moments
        assert ours.estimates == theirs.estimates


MOMENTS_SPEC = QuerySpec(kind="quantile", quantiles=(0.1, 0.5, 0.9, 0.99),
                         report_moments=True)


class TestIngestEquivalence:
    """IngestSession vs legacy per-layer ingest: bit-exact on all five.

    Each test feeds the identical rows, with identical batch boundaries,
    once through the legacy entry point and once through an
    :class:`~repro.ingest.IngestSession`, then asserts the unified
    QuerySpec answers — merged moments included — match bit for bit.
    (Different batch *boundaries* would re-associate float adds; the
    gate holds per batch, which is what the shims guarantee.)
    """

    def _moments(self, target) -> dict:
        payload = QueryService(t=target).execute(MOMENTS_SPEC).to_dict()
        payload.pop("timings")  # wall-clock noise; everything else is exact
        return payload

    def test_cube(self, data):
        cell_ids = np.arange(data.size) // CELL
        legacy = DataCube(CubeSchema(("cell",)), lambda: MomentsSummary(k=K))
        legacy.ingest([cell_ids], data)
        target = DataCube(CubeSchema(("cell",)), lambda: MomentsSummary(k=K))
        with IngestSession(target) as session:
            session.append_columns(data, dims=[cell_ids])
        assert self._moments(target) == self._moments(legacy)

    def test_druid(self, data):
        cell_ids = np.arange(data.size) // CELL
        timestamps = (np.arange(data.size) // 4000).astype(float)

        def engine():
            return DruidEngine(
                dimensions=("cell",),
                aggregators={"m": MomentsSketchAggregator(k=K)},
                granularity=1.0, processing_threads=1)

        legacy = engine()
        legacy.ingest(timestamps, [cell_ids], data)
        target = engine()
        with IngestSession(target) as session:
            session.append_columns(data, dims=[cell_ids],
                                   timestamps=timestamps)
        assert len(target.segments) == len(legacy.segments) == 5
        assert self._moments(target) == self._moments(legacy)

    def test_packed_store(self, data):
        legacy = PackedSketchStore(k=K)
        for start in range(0, data.size, CELL):
            legacy.accumulate_row(legacy.new_row(), data[start:start + CELL])
        target = PackedSketchStore(k=K)
        cell_ids = np.arange(data.size) // CELL
        spec = IngestSpec(dimensions=("cell",))
        with IngestSession(target, spec) as session:
            session.append_columns(data, dims=[cell_ids])
        assert len(target) == len(legacy)
        assert np.array_equal(target.power_sums[:len(target)],
                              legacy.power_sums[:len(legacy)])
        assert self._moments(target) == self._moments(legacy)

    def test_window(self, data):
        def monitor():
            return StreamingWindowMonitor(pane_size=CELL, window_panes=10,
                                          threshold=float("inf"), k=K)

        legacy = monitor()
        legacy.ingest(data)
        target = monitor()
        with IngestSession(target) as session:
            session.append_columns(data)
        assert self._moments(list(target._panes)) \
            == self._moments(list(legacy._panes))
        assert target.current_window.power_sums.tolist() \
            == legacy.current_window.power_sums.tolist()

    def test_cluster(self, data):
        cell_ids = np.arange(data.size) // CELL

        def cluster():
            return ClusterCoordinator(
                dimensions=("cell",),
                aggregators={"m": MomentsSketchAggregator(k=K)},
                num_shards=16, replication=2, granularity=1.0,
                nodes=["n0", "n1", "n2"])

        legacy = cluster()
        timestamps = legacy.shard_ids([cell_ids]).astype(float)
        legacy.ingest(timestamps, [cell_ids], data)
        target = cluster()
        with IngestSession(target, dedup_key="gate") as session:
            session.append_columns(data, dims=[cell_ids],
                                   timestamps=timestamps)
        assert self._moments(target) == self._moments(legacy)

    def test_cluster_replay_idempotent_across_replicas(self, data):
        cell_ids = np.arange(data.size) // CELL
        cluster = ClusterCoordinator(
            dimensions=("cell",),
            aggregators={"m": MomentsSketchAggregator(k=K)},
            num_shards=16, replication=2, granularity=1.0,
            nodes=["n0", "n1", "n2"])
        timestamps = cluster.shard_ids([cell_ids]).astype(float)
        backend = as_write_backend(cluster)
        batch = make_batch(data, dims=[cell_ids], timestamps=timestamps,
                           sequence=("gate", 0))
        backend.write(batch)
        before = self._moments(cluster)
        # Replay before and after a failover repair: no replica may
        # double-count, including ones rebuilt from snapshots.
        assert backend.write(batch).replicas == 0
        cluster.fail_node("n1", repair=True)
        assert backend.write(batch).replicas == 0
        assert self._moments(cluster) == before


class TestIngestEquivalenceProperties:
    """Hypothesis gate: any rows, any batch split — session == legacy."""

    values_strategy = st.lists(
        st.floats(min_value=0.01, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        min_size=4, max_size=120)

    @given(values=values_strategy, cardinality=st.integers(1, 6),
           splits=st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_cube_session_matches_legacy_bitwise(self, values, cardinality,
                                                 splits):
        values = np.asarray(values, dtype=float)
        dims = (np.arange(values.size) % cardinality).astype(int)
        bounds = np.linspace(0, values.size, splits + 1).astype(int)
        legacy = DataCube(CubeSchema(("d",)), lambda: MomentsSummary(k=6))
        target = DataCube(CubeSchema(("d",)), lambda: MomentsSummary(k=6))
        session = IngestSession(target, flush_rows=None)
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            if lo == hi:
                continue
            legacy.ingest([dims[lo:hi]], values[lo:hi])
            session.append_columns(values[lo:hi], dims=[dims[lo:hi]])
            session.flush()
        session.close()
        assert np.array_equal(
            target.store.power_sums[:target.num_cells],
            legacy.store.power_sums[:legacy.num_cells])
        assert np.array_equal(target.store.log_sums[:target.num_cells],
                              legacy.store.log_sums[:legacy.num_cells])


class TestLowPrecisionRoundTrip:
    """Low-precision storage composes with cross-backend equivalence.

    Every backend produces bit-identical merged moments, so encoding
    them through the Appendix C LowPrecisionCodec must yield the
    *identical payload* per backend (the codec's randomized rounding is
    seeded), and the decoded sketch must sit within one quantization ulp
    of the originals everywhere.
    """

    @staticmethod
    def sketch_of(moments):
        from repro.core import MomentsSketch
        sketch = MomentsSketch(k=K, track_log=True)
        sketch.count = float(moments["count"])
        sketch.min = float(moments["min"])
        sketch.max = float(moments["max"])
        sketch.power_sums = np.asarray(moments["power_sums"], dtype=float)
        sketch.log_sums = np.asarray(moments["log_sums"], dtype=float)
        sketch.log_valid = bool(moments["log_valid"])
        return sketch

    @pytest.fixture(scope="class")
    def merged(self, service):
        spec = QuerySpec(kind="quantile", quantiles=(0.5,),
                         report_moments=True)
        return {name: self.sketch_of(
                    service.execute(spec, backend=name).moments)
                for name in BACKENDS}

    def test_identical_payload_across_backends(self, merged):
        from repro.core.encoding import LowPrecisionCodec

        def encode(sketch):
            # fresh codec per encode: the rounding RNG is stateful, so
            # only same-seed fresh instances are deterministic
            return LowPrecisionCodec(mantissa_bits=10, seed=7).encode(sketch)

        reference = encode(merged["cube"])
        for name in BACKENDS:
            assert encode(merged[name]) == reference, name

    def test_round_trip_within_one_ulp(self, merged):
        from repro.core.encoding import LowPrecisionCodec
        for name, sketch in merged.items():
            codec = LowPrecisionCodec(mantissa_bits=10, seed=7)
            restored = codec.decode(codec.encode(sketch))
            assert restored.count == sketch.count
            assert restored.min == sketch.min
            assert restored.max == sketch.max
            np.testing.assert_allclose(restored.power_sums[1:],
                                       sketch.power_sums[1:],
                                       rtol=2.0 ** -9, err_msg=name)
            np.testing.assert_allclose(restored.log_sums[1:],
                                       sketch.log_sums[1:],
                                       rtol=2.0 ** -9, err_msg=name)

    def test_decoded_sketches_estimate_identically(self, merged):
        from repro.core import estimate_quantiles
        from repro.core.encoding import LowPrecisionCodec
        def round_trip(sketch):
            codec = LowPrecisionCodec(mantissa_bits=16, seed=7)
            return codec.decode(codec.encode(sketch))

        estimates = {
            name: estimate_quantiles(round_trip(sketch), [0.5, 0.99])
            for name, sketch in merged.items()}
        reference = estimates["cube"]
        for name in BACKENDS:
            # Identical payloads decode to identical sketches, so the
            # solves must agree exactly across backends.
            np.testing.assert_array_equal(estimates[name], reference,
                                          err_msg=name)
