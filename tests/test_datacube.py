"""Tests for the data-cube layer (ingestion, roll-up, group-by)."""

import numpy as np
import pytest

from repro.core.errors import QueryError
from repro.datacube import CubeSchema, DataCube
from repro.summaries import ExactSummary, MomentsSummary


@pytest.fixture()
def populated_cube():
    rng = np.random.default_rng(0)
    n = 20_000
    country = rng.choice(["US", "CA"], n)
    version = rng.integers(7, 9, n)
    values = rng.lognormal(1.0, 1.0, n)
    cube = DataCube(CubeSchema(("country", "version")),
                    lambda: MomentsSummary(k=8))
    cube.ingest([country, version], values)
    return cube, country, version, values


class TestSchema:
    def test_duplicate_dimensions_rejected(self):
        with pytest.raises(QueryError):
            CubeSchema(("a", "a"))

    def test_empty_dimensions_rejected(self):
        with pytest.raises(QueryError):
            CubeSchema(())

    def test_unknown_dimension_lookup(self):
        schema = CubeSchema(("a", "b"))
        with pytest.raises(QueryError):
            schema.index_of("c")


class TestIngestion:
    def test_one_cell_per_dimension_tuple(self, populated_cube):
        cube, country, version, _ = populated_cube
        expected = len({(c, v) for c, v in zip(country, version)})
        assert cube.num_cells == expected

    def test_counts_partition_the_data(self, populated_cube):
        cube, *_, values = populated_cube
        total = sum(cell.count for cell in cube.cells.values())
        assert total == values.size

    def test_column_length_mismatch_rejected(self):
        cube = DataCube(CubeSchema(("d",)), ExactSummary)
        with pytest.raises(QueryError):
            cube.ingest([np.asarray([1, 2])], np.asarray([1.0]))

    def test_wrong_column_arity_rejected(self):
        cube = DataCube(CubeSchema(("d",)), ExactSummary)
        with pytest.raises(QueryError):
            cube.ingest([np.asarray([1]), np.asarray([1])], np.asarray([1.0]))

    def test_insert_cell_merges_existing(self):
        cube = DataCube(CubeSchema(("d",)), ExactSummary)
        cube.insert_cell(("x",), ExactSummary.from_data([1.0, 2.0]))
        cube.insert_cell(("x",), ExactSummary.from_data([3.0]))
        assert cube.num_cells == 1
        assert cube.cells[("x",)].count == 3


class TestRollup:
    def test_full_rollup_matches_exact(self):
        rng = np.random.default_rng(1)
        n = 5_000
        dim = rng.integers(0, 20, n)
        values = rng.normal(0, 1, n)
        cube = DataCube(CubeSchema(("d",)), ExactSummary)
        cube.ingest([dim], values)
        rolled = cube.rollup()
        assert rolled.quantile(0.5) == pytest.approx(np.quantile(values, 0.5), abs=1e-3)
        assert cube.last_merge_count == cube.num_cells

    def test_filtered_rollup(self, populated_cube):
        cube, country, version, values = populated_cube
        us = cube.rollup({"country": "US"})
        assert us.count == int(np.sum(country == "US"))

    def test_rollup_does_not_mutate_cells(self, populated_cube):
        cube, *_ = populated_cube
        counts_before = {k: cell.count for k, cell in cube.cells.items()}
        cube.rollup()
        assert {k: cell.count for k, cell in cube.cells.items()} == counts_before

    def test_empty_filter_result_rejected(self, populated_cube):
        cube, *_ = populated_cube
        with pytest.raises(QueryError):
            cube.rollup({"country": "ZZ"})

    def test_quantile_convenience(self, populated_cube):
        cube, country, version, values = populated_cube
        estimate = cube.quantile(0.99, {"country": "CA"})
        truth = np.quantile(values[country == "CA"], 0.99)
        assert estimate == pytest.approx(truth, rel=0.15)


class TestGroupBy:
    def test_groups_cover_dimension_values(self, populated_cube):
        cube, country, version, _ = populated_cube
        groups = cube.group_by("version")
        assert set(groups) == set(np.unique(version))

    def test_group_counts_partition(self, populated_cube):
        cube, country, version, values = populated_cube
        groups = cube.group_by("country")
        assert sum(g.count for g in groups.values()) == values.size

    def test_group_by_with_filter(self, populated_cube):
        cube, country, version, values = populated_cube
        groups = cube.group_by("version", {"country": "US"})
        mask = country == "US"
        for v, summary in groups.items():
            assert summary.count == int(np.sum(mask & (version == v)))


class TestPackedBackend:
    def test_auto_backend_selection(self):
        packed = DataCube(CubeSchema(("d",)), lambda: MomentsSummary(k=6))
        generic = DataCube(CubeSchema(("d",)), ExactSummary)
        assert packed.backend == "packed"
        assert generic.backend == "dict"
        assert packed.store is not None and generic.store is None

    def test_packed_backend_requires_moments(self):
        with pytest.raises(QueryError):
            DataCube(CubeSchema(("d",)), ExactSummary, backend="packed")
        with pytest.raises(QueryError):
            DataCube(CubeSchema(("d",)), ExactSummary, backend="columnar")

    def test_packed_rollup_matches_dict_backend_bitwise(self):
        rng = np.random.default_rng(5)
        n = 10_000
        country = rng.choice(["US", "CA", "MX"], n)
        version = rng.integers(0, 4, n)
        values = rng.lognormal(1.0, 1.0, n)
        factory = lambda: MomentsSummary(k=8)
        packed = DataCube(CubeSchema(("country", "version")), factory,
                          backend="packed")
        plain = DataCube(CubeSchema(("country", "version")), factory,
                         backend="dict")
        packed.ingest([country, version], values)
        plain.ingest([country, version], values)
        assert packed.num_cells == plain.num_cells
        for filters in (None, {"country": "US"},
                        {"country": "CA", "version": 2}):
            a = packed.rollup(filters).sketch
            b = plain.rollup(filters).sketch
            assert a.count == b.count
            assert np.array_equal(a.power_sums, b.power_sums)
            assert np.array_equal(a.log_sums, b.log_sums)
            assert a.min == b.min and a.max == b.max
            assert packed.last_merge_count == plain.last_merge_count

    def test_packed_group_by_matches_dict_backend(self):
        rng = np.random.default_rng(6)
        n = 5_000
        dim = rng.integers(0, 6, n)
        values = rng.lognormal(0.5, 1.0, n)
        factory = lambda: MomentsSummary(k=6)
        packed = DataCube(CubeSchema(("d",)), factory, backend="packed")
        plain = DataCube(CubeSchema(("d",)), factory, backend="dict")
        packed.ingest([dim], values)
        plain.ingest([dim], values)
        packed_groups = packed.group_by("d")
        plain_groups = plain.group_by("d")
        assert set(packed_groups) == set(plain_groups)
        for key in plain_groups:
            assert np.array_equal(packed_groups[key].sketch.power_sums,
                                  plain_groups[key].sketch.power_sums)

    def test_packed_insert_cell_merges_existing(self):
        cube = DataCube(CubeSchema(("d",)),
                        lambda: MomentsSummary(k=5), backend="packed")
        cube.insert_cell(("x",), MomentsSummary.from_data([1.0, 2.0], k=5))
        cube.insert_cell(("x",), MomentsSummary.from_data([3.0], k=5))
        assert cube.num_cells == 1
        assert cube.cells[("x",)].count == 3

    def test_packed_insert_cell_rejects_foreign_summary(self):
        cube = DataCube(CubeSchema(("d",)),
                        lambda: MomentsSummary(k=5), backend="packed")
        with pytest.raises(QueryError):
            cube.insert_cell(("x",), ExactSummary.from_data([1.0]))

    def test_packed_cells_view_is_read_consistent(self):
        rng = np.random.default_rng(7)
        cube = DataCube(CubeSchema(("d",)), lambda: MomentsSummary(k=5))
        cube.ingest([rng.integers(0, 3, 1000)], rng.lognormal(0, 1, 1000))
        total = sum(cell.count for cell in cube.cells.values())
        assert total == 1000
        cube.rollup()
        assert sum(cell.count for cell in cube.cells.values()) == total

    def test_packed_ingest_slabs_stay_bitwise_equal(self):
        # Many groups + a slab budget far below the batch size forces
        # multiple batch_accumulate slabs; results must stay bit-equal.
        rng = np.random.default_rng(8)
        n = 20_000
        dim = rng.integers(0, 50, n)
        values = rng.lognormal(0.5, 1.0, n)
        factory = lambda: MomentsSummary(k=6)
        packed = DataCube(CubeSchema(("d",)), factory, backend="packed")
        plain = DataCube(CubeSchema(("d",)), factory, backend="dict")
        packed.ingest([dim], values)
        plain.ingest([dim], values)
        for key, cell in plain.cells.items():
            assert np.array_equal(packed.cells[key].sketch.power_sums,
                                  cell.sketch.power_sums)

    def test_packed_cell_access_cannot_corrupt_store(self):
        cube = DataCube(CubeSchema(("d",)), lambda: MomentsSummary(k=5))
        cube.ingest([np.asarray([0, 0, 1])], np.asarray([1.0, 2.0, 3.0]))
        view = cube.cells[(0,)]
        view.accumulate([100.0])  # mutates the copy only
        assert cube.cells[(0,)].count == 2
        assert cube.rollup().count == 3
