"""Tests for the data-cube layer (ingestion, roll-up, group-by)."""

import numpy as np
import pytest

from repro.core.errors import QueryError
from repro.datacube import CubeSchema, DataCube
from repro.summaries import ExactSummary, MomentsSummary


@pytest.fixture()
def populated_cube():
    rng = np.random.default_rng(0)
    n = 20_000
    country = rng.choice(["US", "CA"], n)
    version = rng.integers(7, 9, n)
    values = rng.lognormal(1.0, 1.0, n)
    cube = DataCube(CubeSchema(("country", "version")),
                    lambda: MomentsSummary(k=8))
    cube.ingest([country, version], values)
    return cube, country, version, values


class TestSchema:
    def test_duplicate_dimensions_rejected(self):
        with pytest.raises(QueryError):
            CubeSchema(("a", "a"))

    def test_empty_dimensions_rejected(self):
        with pytest.raises(QueryError):
            CubeSchema(())

    def test_unknown_dimension_lookup(self):
        schema = CubeSchema(("a", "b"))
        with pytest.raises(QueryError):
            schema.index_of("c")


class TestIngestion:
    def test_one_cell_per_dimension_tuple(self, populated_cube):
        cube, country, version, _ = populated_cube
        expected = len({(c, v) for c, v in zip(country, version)})
        assert cube.num_cells == expected

    def test_counts_partition_the_data(self, populated_cube):
        cube, *_, values = populated_cube
        total = sum(cell.count for cell in cube.cells.values())
        assert total == values.size

    def test_column_length_mismatch_rejected(self):
        cube = DataCube(CubeSchema(("d",)), ExactSummary)
        with pytest.raises(QueryError):
            cube.ingest([np.asarray([1, 2])], np.asarray([1.0]))

    def test_wrong_column_arity_rejected(self):
        cube = DataCube(CubeSchema(("d",)), ExactSummary)
        with pytest.raises(QueryError):
            cube.ingest([np.asarray([1]), np.asarray([1])], np.asarray([1.0]))

    def test_insert_cell_merges_existing(self):
        cube = DataCube(CubeSchema(("d",)), ExactSummary)
        cube.insert_cell(("x",), ExactSummary.from_data([1.0, 2.0]))
        cube.insert_cell(("x",), ExactSummary.from_data([3.0]))
        assert cube.num_cells == 1
        assert cube.cells[("x",)].count == 3


class TestRollup:
    def test_full_rollup_matches_exact(self):
        rng = np.random.default_rng(1)
        n = 5_000
        dim = rng.integers(0, 20, n)
        values = rng.normal(0, 1, n)
        cube = DataCube(CubeSchema(("d",)), ExactSummary)
        cube.ingest([dim], values)
        rolled = cube.rollup()
        assert rolled.quantile(0.5) == pytest.approx(np.quantile(values, 0.5), abs=1e-3)
        assert cube.last_merge_count == cube.num_cells

    def test_filtered_rollup(self, populated_cube):
        cube, country, version, values = populated_cube
        us = cube.rollup({"country": "US"})
        assert us.count == int(np.sum(country == "US"))

    def test_rollup_does_not_mutate_cells(self, populated_cube):
        cube, *_ = populated_cube
        counts_before = {k: cell.count for k, cell in cube.cells.items()}
        cube.rollup()
        assert {k: cell.count for k, cell in cube.cells.items()} == counts_before

    def test_empty_filter_result_rejected(self, populated_cube):
        cube, *_ = populated_cube
        with pytest.raises(QueryError):
            cube.rollup({"country": "ZZ"})

    def test_quantile_convenience(self, populated_cube):
        cube, country, version, values = populated_cube
        estimate = cube.quantile(0.99, {"country": "CA"})
        truth = np.quantile(values[country == "CA"], 0.99)
        assert estimate == pytest.approx(truth, rel=0.15)


class TestGroupBy:
    def test_groups_cover_dimension_values(self, populated_cube):
        cube, country, version, _ = populated_cube
        groups = cube.group_by("version")
        assert set(groups) == set(np.unique(version))

    def test_group_counts_partition(self, populated_cube):
        cube, country, version, values = populated_cube
        groups = cube.group_by("country")
        assert sum(g.count for g in groups.values()) == values.size

    def test_group_by_with_filter(self, populated_cube):
        cube, country, version, values = populated_cube
        groups = cube.group_by("version", {"country": "US"})
        mask = country == "US"
        for v, summary in groups.items():
            assert summary.count == int(np.sum(mask & (version == v)))
