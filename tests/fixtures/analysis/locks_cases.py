"""Lock-discipline fixtures.

The test config declares ``Account.balance`` and ``Account.history`` as
GUARDED_BY ``self._lock``.  Each method below is either a passing or a
failing case; tests/test_analysis.py asserts the exact findings.
"""

import threading


class Account:
    def __init__(self):
        self._lock = threading.Lock()
        self.balance = 0          # ok: __init__ implicitly holds the lock
        self.history = []         # ok: __init__ implicitly holds the lock

    def deposit(self, amount):
        with self._lock:
            self.balance += amount          # ok: guarded
            self._append_locked(amount)     # ok: caller holds the lock

    def peek(self):
        return self.balance                 # LOCK001 (line 23)

    def drain(self, pool):
        with self._lock:
            amount = self.balance           # ok: guarded
        pool.submit(lambda: self.history.append(amount))  # LOCK001 (line 28)

    def bad_helper_call(self):
        self._append_locked(1)              # LOCK002 (line 31)

    def _append_locked(self, amount):
        self.history.append(amount)         # ok: _locked-suffix convention
