"""API-hygiene fixtures: deprecated ``phi=`` call sites and the
errors-taxonomy rule (the test config tags this module's public surface
as taxonomy-bound)."""


class QueryError(Exception):
    """Stand-in for the repro.core.errors taxonomy."""


def old_style(sketch):
    return sketch.quantile(phi=0.5)     # API001 (line 11)


def new_style(sketch):
    return sketch.quantile(q=0.5)       # ok: canonical keyword


def normalize_q(q=None, phi=None):      # ok: def sites are never flagged
    return q if q is not None else phi


def funnel(q=None, phi=None):
    return normalize_q(q, phi=phi)      # ok: the deprecation funnel itself


def bad_raise(value):
    if value < 0:
        raise ValueError("negative")    # API002 (line 28)
    return value


def good_raise(value):
    if value > 1:
        raise QueryError("too large")   # ok: taxonomy error
    return value
