"""Suppression fixtures: line-level, bare, mismatched, and
function-level ``# repro: noqa`` comments (module tagged
merge-order sensitive by the test config)."""


def line_level():
    for item in {"a", "b"}:  # repro: noqa[DET001]
        print(item)


def bare_noqa():
    for item in {"a", "b"}:  # repro: noqa
        print(item)


def wrong_rule():
    for item in {"a", "b"}:  # repro: noqa[DET002]
        print(item)          # the DET001 above is NOT suppressed


def function_level():  # repro: noqa[DET001]
    for item in {"a", "b"}:
        print(item)
    for item in {"c", "d"}:
        print(item)
