"""Telemetry-guard fixtures: data-plane calls vs the TELEMETRY.enabled
dominance rule, and span-lifecycle discipline."""

from repro.telemetry import TELEMETRY


def unguarded(n):
    TELEMETRY.registry.counter("queries").inc(n)       # TEL001 (line 8)


def guarded(n):
    if TELEMETRY.enabled:
        TELEMETRY.registry.counter("queries").inc(n)   # ok: dominated


def early_return(n):
    if not TELEMETRY.enabled:
        return
    TELEMETRY.registry.counter("queries").inc(n)       # ok: early return


def aliased_guard(n):
    telemetry_on = TELEMETRY.enabled
    if telemetry_on:
        TELEMETRY.registry.counter("queries").inc(n)   # ok: alias guard


def manual_span():
    if TELEMETRY.enabled:
        span = TELEMETRY.tracer.span("work")
        span.end()                                     # TEL002 (line 31)


def discarded_span():
    if TELEMETRY.enabled:
        TELEMETRY.tracer.span("work")                  # TEL002 (line 36)


def context_span():
    if TELEMETRY.enabled:
        with TELEMETRY.tracer.span("work"):            # ok: context manager
            pass


def detached_span():
    if TELEMETRY.enabled:
        span = TELEMETRY.tracer.span("work", detached=True)
        return span.end()                              # ok: detached payload
    return None
