"""Determinism fixtures: the test config tags this module as
merge-order sensitive."""


def iterate_set(items):
    for item in {"a", "b"}:             # DET001 (line 6)
        print(item)
    for item in sorted({"a", "b"}):     # ok: sorted wrapper
        print(item)


def iterate_keys(mapping):
    return [k for k in mapping.keys()]  # DET002 (line 13)


def iterate_items(mapping):
    return [v for _, v in mapping.items()]  # ok: .items() is exempt


def float_total(latency_seconds):
    return sum(latency_seconds)         # DET003 (line 21)


def int_total(counts):
    return sum(counts)                  # ok: no float-hinted identifier
