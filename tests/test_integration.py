"""End-to-end integration tests across the full stack.

Each test wires together several subsystems the way the paper's Section 7
deployments do: raw rows -> cube/engine -> merged sketches -> estimates /
threshold answers, checked against exact computation on the raw rows.
"""

import numpy as np
import pytest

from repro.core import MomentsSketch
from repro.core.cascade import ThresholdCascade
from repro.datacube import CubeSchema, DataCube
from repro.datasets import generate_cells, load
from repro.druid import DruidEngine, registry
from repro.macrobase import MacroBaseEngine, MomentsCube
from repro.summaries import MomentsSummary, SUMMARY_REGISTRY
from repro.window import TurnstileWindowProcessor, build_panes, inject_spikes
from repro.workload import PHI_GRID, build_cells, merge_cells, quantile_errors


class TestCubeToEstimatePipeline:
    @pytest.mark.parametrize("dataset_name", ["milan", "hepmass", "power"])
    def test_cube_rollup_accuracy(self, dataset_name):
        """Ingest a real-shaped dataset into a cube, roll up a filtered
        slice, and check the estimate against the exact slice quantiles."""
        rng = np.random.default_rng(0)
        values = np.asarray(load(dataset_name, 40_000))
        country = rng.choice(["US", "CA"], values.size)
        version = rng.integers(0, 5, values.size)
        cube = DataCube(CubeSchema(("country", "version")),
                        lambda: MomentsSummary(k=10))
        cube.ingest([country, version], values)
        mask = country == "US"
        merged = cube.rollup({"country": "US"})
        errors = quantile_errors(np.sort(values[mask]),
                                 merged.quantiles(PHI_GRID), PHI_GRID)
        assert float(np.mean(errors)) < 0.015

    def test_all_summaries_work_in_cube(self):
        rng = np.random.default_rng(1)
        values = rng.lognormal(1.0, 1.0, 5_000)
        dim = rng.integers(0, 10, values.size)
        for name, cls in SUMMARY_REGISTRY.items():
            cube = DataCube(CubeSchema(("d",)), cls)
            cube.ingest([dim], values)
            rolled = cube.rollup()
            assert rolled.count == values.size, name


class TestDruidEndToEnd:
    def test_quantile_vs_sum_vs_histogram(self):
        """The Figure 11 setup end to end, checking answers not timing."""
        rng = np.random.default_rng(2)
        values = np.asarray(load("milan", 30_000))
        n = values.size
        engine = DruidEngine(("grid", "country"),
                             registry(histogram_bins=(100,)),
                             granularity=3600.0)
        engine.ingest(rng.uniform(0, 24 * 3600, n),
                      [rng.integers(0, 30, n), rng.choice(["US", "CA"], n)],
                      values)
        truth = float(np.quantile(values, 0.99))
        moments = engine.query("momentsSketch@10", q=0.99)
        histogram = engine.query("S-Hist@100", q=0.99)
        assert moments.value == pytest.approx(truth, rel=0.15)
        assert histogram.value == pytest.approx(truth, rel=0.5)
        # The Figure 11 claim is about *time*: merging thousands of
        # histogram cells costs far more than merging moments sketches.
        assert moments.merge_seconds < histogram.merge_seconds


class TestMacroBaseEndToEnd:
    def test_cube_engine_agrees_with_raw_scan(self):
        rng = np.random.default_rng(3)
        n = 30_000
        version = rng.choice(["a", "b", "c"], n, p=[0.49, 0.02, 0.49])
        hw = rng.integers(0, 4, n)
        values = rng.lognormal(1.0, 0.8, n)
        hot = version == "b"
        values[hot] = rng.lognormal(4.0, 0.8, int(hot.sum()))

        engine = MacroBaseEngine(MomentsCube.build([version, hw], values, k=10))
        report = engine.find_outlier_groups(outlier_phi=0.99, rate_multiplier=30.0)
        flagged = {(g.dimension, g.value) for g in report.groups}

        # Raw-scan ground truth.
        t99 = np.quantile(values, 0.99)
        expected = set()
        for dim, column in enumerate([version, hw]):
            for value in np.unique(column):
                mask = column == value
                if np.mean(values[mask] > t99) > 0.3:
                    expected.add((dim, value))
        assert (0, "b") in flagged
        assert flagged.symmetric_difference(expected) == set() or \
            len(flagged.symmetric_difference(expected)) <= 2


class TestSlidingWindowEndToEnd:
    def test_turnstile_alerts_match_exact_computation(self):
        rng = np.random.default_rng(4)
        values = rng.lognormal(1.0, 1.0, 24_000)
        pane_size = 400
        values = inject_spikes(values, pane_size, list(range(20, 32)),
                               spike_value=4000.0, spike_fraction=0.1)
        panes = build_panes(values, pane_size)
        w = 12
        threshold = 1000.0
        processor = TurnstileWindowProcessor(panes, window_panes=w)
        result = processor.query(threshold=threshold, q=0.99)
        got = {a.start_pane for a in result.alerts}
        expected = set()
        for start in range(len(panes) - w + 1):
            window_values = values[start * pane_size:(start + w) * pane_size]
            if np.quantile(window_values, 0.99) > threshold:
                expected.add(start)
        # Sketch estimates may flip borderline windows; require high overlap.
        union = got | expected
        assert union
        assert len(got & expected) / len(union) > 0.8


class TestProductionWorkloadEndToEnd:
    def test_variable_cells_merge_and_estimate(self):
        cells = generate_cells(num_cells=400, seed=0, mean_cell_size=120.0)
        sketches = [MomentsSketch.from_data(cell.values, k=10) for cell in cells]
        merged = sketches[0].copy()
        for sketch in sketches[1:]:
            merged.merge(sketch)
        everything = np.concatenate([cell.values for cell in cells])
        assert merged.count == everything.size
        summary = MomentsSummary(k=10)
        summary.sketch = merged
        estimates = summary.quantiles(PHI_GRID)
        # Integer data: round like the paper does for retail (Section 6.2.3).
        errors = quantile_errors(np.sort(everything), np.round(estimates), PHI_GRID)
        assert float(np.mean(errors)) < 0.02


class TestCascadeWithinEngine:
    def test_threshold_query_consistency_on_cube(self):
        rng = np.random.default_rng(5)
        values = np.asarray(load("power", 20_000))
        dim = rng.integers(0, 15, values.size)
        cube = MomentsCube.build([dim], values, k=10)
        cascade = ThresholdCascade()
        bare = ThresholdCascade(enabled_stages=())
        t = float(np.quantile(values, 0.95))
        for sketch in cube.cells.values():
            assert (cascade.threshold(sketch, t, 0.9)
                    == bare.threshold(sketch, t, 0.9))
