"""Tests for the maximum-entropy solver: convergence, moment matching,
conditioning, and domain selection."""

import numpy as np
import pytest

from repro.core import MomentsSketch, SolverConfig
from repro.core.errors import ConvergenceError, SketchError
from repro.core.solver import (
    build_basis,
    choose_domain,
    condition_number,
    solve,
    uniform_hessian,
)


@pytest.fixture(scope="module")
def gaussian_sketch():
    rng = np.random.default_rng(0)
    return MomentsSketch.from_data(rng.normal(0, 1, 30_000), k=10)


@pytest.fixture(scope="module")
def lognormal_sketch():
    rng = np.random.default_rng(1)
    return MomentsSketch.from_data(rng.lognormal(1.0, 1.5, 30_000), k=10)


class TestBuildBasis:
    def test_row_zero_is_constant(self, gaussian_sketch):
        basis = build_basis(gaussian_sketch, 6, 0)
        np.testing.assert_array_equal(basis.matrix[0], np.ones(basis.nodes.size))

    def test_targets_start_with_one(self, gaussian_sketch):
        basis = build_basis(gaussian_sketch, 6, 0)
        assert basis.targets[0] == 1.0
        assert basis.targets.size == 7

    def test_basis_rows_bounded_by_one(self, lognormal_sketch):
        basis = build_basis(lognormal_sketch, 5, 5)
        assert np.max(np.abs(basis.matrix)) <= 1.0 + 1e-9

    def test_log_moments_dropped_for_nonpositive_data(self):
        sketch = MomentsSketch.from_data([-1.0, 0.5, 2.0], k=4)
        basis = build_basis(sketch, 3, 3)
        assert basis.k2 == 0

    def test_invalid_counts_rejected(self, gaussian_sketch):
        with pytest.raises(SketchError):
            build_basis(gaussian_sketch, 0, 0)
        with pytest.raises(SketchError):
            build_basis(gaussian_sketch, 11, 0)

    def test_log_domain_node_values_positive(self, lognormal_sketch):
        basis = build_basis(lognormal_sketch, 2, 5, domain="log")
        x = basis.node_values()
        assert np.all(x > 0)
        assert x.min() == pytest.approx(lognormal_sketch.min, rel=1e-9)
        assert x.max() == pytest.approx(lognormal_sketch.max, rel=1e-9)


class TestChooseDomain:
    def test_linear_without_log_moments(self, gaussian_sketch):
        assert choose_domain(gaussian_sketch, 5) == "linear"

    def test_log_for_wide_positive_spread(self, lognormal_sketch):
        assert lognormal_sketch.max / lognormal_sketch.min > 100
        assert choose_domain(lognormal_sketch, 5) == "log"

    def test_linear_for_narrow_positive_spread(self):
        rng = np.random.default_rng(2)
        sketch = MomentsSketch.from_data(rng.uniform(10, 20, 1000), k=6)
        assert choose_domain(sketch, 4) == "linear"

    def test_k2_zero_forces_linear(self, lognormal_sketch):
        assert choose_domain(lognormal_sketch, 0) == "linear"


class TestSolve:
    def test_moments_match_after_convergence(self, gaussian_sketch):
        config = SolverConfig()
        basis = build_basis(gaussian_sketch, 8, 0, config)
        result = solve(basis, config)
        assert result.converged
        # Post-condition: solved density reproduces every target moment
        # to within the gradient tolerance (Section 4.4's premise).
        f = result.density_on(basis.nodes, matrix=basis.matrix)
        achieved = basis.matrix @ (basis.weights * f)
        np.testing.assert_allclose(achieved, basis.targets, atol=1e-8)

    def test_density_integrates_to_one(self, lognormal_sketch):
        config = SolverConfig()
        basis = build_basis(lognormal_sketch, 2, 6, config)
        result = solve(basis, config)
        f = result.density_on(basis.nodes, matrix=basis.matrix)
        assert float(np.dot(basis.weights, f)) == pytest.approx(1.0, abs=1e-8)

    def test_uniform_data_converges_immediately(self):
        rng = np.random.default_rng(3)
        sketch = MomentsSketch.from_data(rng.uniform(-1, 1, 50_000), k=4)
        basis = build_basis(sketch, 4, 0)
        result = solve(basis)
        assert result.converged
        # Max-entropy fit of near-uniform moments is near-uniform density.
        f = result.density_on(np.linspace(-0.9, 0.9, 5))
        np.testing.assert_allclose(f, 0.5, atol=0.05)

    def test_two_point_mass_raises_convergence_error(self):
        # Fewer distinct values than moment constraints (Figure 8 regime).
        data = np.asarray([0.0, 1.0] * 500)
        sketch = MomentsSketch.from_data(data, k=8)
        basis = build_basis(sketch, 8, 0)
        with pytest.raises(ConvergenceError):
            solve(basis, SolverConfig(max_iterations=60))

    def test_custom_start_point(self, gaussian_sketch):
        basis = build_basis(gaussian_sketch, 4, 0)
        theta0 = np.zeros(5)
        theta0[0] = np.log(0.5)
        result = solve(basis, theta0=theta0)
        assert result.converged


class TestConditioning:
    def test_chebyshev_basis_conditioning(self, gaussian_sketch):
        # The raison d'etre of the basis change: the uniform Hessian in the
        # Chebyshev basis is far from singular even at order 8+8.
        basis = build_basis(gaussian_sketch, 8, 0)
        kappa = condition_number(uniform_hessian(basis))
        assert kappa < 1e3

    def test_power_basis_would_be_singular(self, gaussian_sketch):
        # Reproduce the Section 4.3.1 anecdote: the same Gram matrix in the
        # raw power basis has condition number orders of magnitude larger.
        basis = build_basis(gaussian_sketch, 8, 0)
        powers = np.vstack([basis.nodes ** i for i in range(9)])
        gram = (powers * (0.5 * basis.weights)) @ powers.T
        assert condition_number(gram) > 1e3 * condition_number(uniform_hessian(basis))

    def test_uniform_hessian_subset_selection(self, lognormal_sketch):
        basis = build_basis(lognormal_sketch, 4, 4)
        sub = uniform_hessian(basis, np.asarray([0, 1, 2]))
        assert sub.shape == (3, 3)
        full = uniform_hessian(basis)
        np.testing.assert_allclose(sub, full[:3, :3])
