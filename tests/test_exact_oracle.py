"""Exact-oracle differential suite: sketches vs ground truth, everywhere.

The sqlite oracle receives the identical rows every backend ingests and
answers with exact nearest-rank quantiles; every sketch estimate is then
graded by the paper's Eq. 1 rank error.  The suite cross-checks all five
aggregation systems — cube, Druid, packed store, window panes, cluster —
on a seeded synthetic dataset with Zipf-weighted (unequal) cell sizes
and on the production-shaped telemetry workload, including per-group
(grouped cells) estimates.
"""

import numpy as np
import pytest

from repro.api import PackedStoreBackend, QueryService, QuerySpec, qkey
from repro.cluster import ClusterCoordinator
from repro.datacube import CubeSchema, DataCube
from repro.datasets import load, production_columns
from repro.druid import DruidEngine, MomentsSketchAggregator
from repro.harness import ExactOracle
from repro.harness.traffic import assign_cells
from repro.ingest import IngestSession, IngestSpec
from repro.store import PackedSketchStore
from repro.summaries.moments_summary import MomentsSummary
from repro.window import build_panes

K = 10
#: Per-query rank-error contract for well-populated cells.
EPSILON = 0.05
QS = (0.1, 0.5, 0.9, 0.99)


def _ingest_all(cell_ids: np.ndarray, values: np.ndarray
                ) -> tuple[QueryService, ExactOracle, list[str]]:
    """The five backends plus the oracle, fed identical rows."""
    timestamps = cell_ids.astype(float)

    cube = DataCube(CubeSchema(("cell",)), lambda: MomentsSummary(k=K))
    cube.ingest([cell_ids], values)

    druid = DruidEngine(dimensions=("cell",),
                        aggregators={"m": MomentsSketchAggregator(k=K)},
                        granularity=1.0, processing_threads=1)
    druid.ingest(timestamps, [cell_ids], values)

    packed_store = PackedSketchStore(k=K)
    with IngestSession(packed_store,
                       IngestSpec(dimensions=("cell",),
                                  flush_rows=None)) as session:
        session.append_columns(values, dims=[cell_ids])
        session.flush()
        packed = session.backend.read_target()
    assert isinstance(packed, PackedStoreBackend)

    # The window "cells" are row-order panes over the same stream; only
    # the global roll-up is comparable (panes are not dimension cells).
    panes = build_panes(values, pane_size=max(values.size // 50, 1), k=K)

    cluster = ClusterCoordinator(
        dimensions=("cell",),
        aggregators={"m": MomentsSketchAggregator(k=K)},
        num_shards=16, replication=2, granularity=1.0,
        nodes=["n0", "n1", "n2"])
    cluster.ingest(timestamps, [cell_ids], values)

    oracle = ExactOracle("cell")
    oracle.insert(cell_ids, values)

    service = QueryService(cube=cube, druid=druid, packed=packed,
                           window=panes, cluster=cluster)
    return service, oracle, ["cube", "druid", "packed", "window", "cluster"]


@pytest.fixture(scope="module")
def synthetic():
    """Zipf-weighted cells over a continuous synthetic dataset."""
    values = np.array(load("milan", n=20_000, seed=5), dtype=float)
    cell_ids = assign_cells(values.size, 24, 1.2,
                            np.random.default_rng(11))
    return _ingest_all(cell_ids, values)


@pytest.fixture(scope="module")
def production():
    """Production-shaped workload: heavy-tailed cell sizes, integers."""
    cell_ids, values = production_columns(40, 25_000, seed=9)
    return _ingest_all(cell_ids, values)


class TestOracleExactness:
    """The oracle itself must be exact before it can grade anything."""

    def test_exact_quantile_matches_numpy_nearest_rank(self):
        rng = np.random.default_rng(0)
        values = rng.normal(0.0, 1.0, 997)
        oracle = ExactOracle()
        oracle.insert(np.zeros(values.size, dtype=int), values)
        ordered = np.sort(values)
        for q in (0.01, 0.25, 0.5, 0.9, 0.999):
            assert oracle.exact_quantile(q) == ordered[int(q * values.size)]

    def test_rank_error_zero_at_exact_quantile(self):
        rng = np.random.default_rng(1)
        values = rng.exponential(1.0, 500)
        oracle = ExactOracle()
        oracle.insert(np.zeros(values.size, dtype=int), values)
        for q in QS:
            assert oracle.rank_error(oracle.exact_quantile(q), q) == 0.0

    def test_rank_error_zero_inside_tie_range(self):
        # 100 copies of 1.0 then 100 of 2.0: any q in (0, 0.5] has its
        # target rank inside 1.0's tie range.
        values = np.concatenate([np.ones(100), np.full(100, 2.0)])
        oracle = ExactOracle()
        oracle.insert(np.zeros(200, dtype=int), values)
        assert oracle.rank_error(1.0, 0.25) == 0.0
        assert oracle.rank_error(1.0, 0.5) == 0.0
        # ... and an estimate a whole tie-block away is maximally wrong.
        assert oracle.rank_error(2.0, 0.25) == pytest.approx(0.25)

    def test_per_cell_isolation(self):
        oracle = ExactOracle()
        oracle.insert([0] * 10 + [1] * 10,
                      list(range(10)) + list(range(100, 110)))
        assert oracle.count(0) == oracle.count(1) == 10
        assert oracle.count() == 20
        assert oracle.exact_quantile(0.5, cell=0) == 5
        assert oracle.exact_quantile(0.5, cell=1) == 105
        assert oracle.cells() == [0, 1]

    def test_threshold_margin_and_exceeds(self):
        oracle = ExactOracle()
        oracle.insert(np.zeros(100, dtype=int), np.arange(100.0))
        assert oracle.exceeds_threshold(t=50.0, q=0.9, cell=0)
        assert not oracle.exceeds_threshold(t=99.5, q=0.9, cell=0)
        # t at the exact q-rank has zero margin; far thresholds have a
        # large one.
        assert oracle.threshold_margin(90.0, 0.9, cell=0) == 0.0
        assert oracle.threshold_margin(10.0, 0.9, cell=0) > 0.5


class TestSyntheticDifferential:
    def test_global_quantiles_within_epsilon(self, synthetic):
        service, oracle, backends = synthetic
        spec = QuerySpec(kind="quantile", quantiles=QS)
        for name in backends:
            response = service.execute(spec, backend=name)
            for q in QS:
                error = oracle.rank_error(response.estimates[qkey(q)], q)
                assert error <= EPSILON, (name, q, error)

    def test_grouped_cells_within_epsilon(self, synthetic):
        service, oracle, backends = synthetic
        spec = QuerySpec(kind="group_by", quantiles=QS,
                         group_dimension="cell")
        for name in backends:
            if name == "window":  # panes are not dimension cells
                continue
            response = service.execute(spec, backend=name)
            assert len(response.groups) == 24
            for cell, estimates in response.groups.items():
                for q in QS:
                    error = oracle.rank_error(estimates[qkey(q)], q,
                                              cell=int(cell))
                    assert error <= EPSILON, (name, int(cell), q, error)

    def test_filtered_point_queries_within_epsilon(self, synthetic):
        service, oracle, backends = synthetic
        for cell in (0, 3, 23):  # hot, middling, coldest cell
            spec = QuerySpec(kind="quantile", quantiles=QS,
                             filters={"cell": cell})
            for name in backends:
                if name == "window":
                    continue
                response = service.execute(spec, backend=name)
                for q in QS:
                    error = oracle.rank_error(response.estimates[qkey(q)],
                                              q, cell=cell)
                    assert error <= EPSILON, (name, cell, q, error)

    def test_top_n_estimates_within_epsilon(self, synthetic):
        service, oracle, backends = synthetic
        spec = QuerySpec(kind="top_n", quantiles=(0.9,),
                         group_dimension="cell", n=5)
        for name in backends:
            if name == "window":
                continue
            response = service.execute(spec, backend=name)
            assert len(response.top) == 5
            for cell, estimate in response.top:
                error = oracle.rank_error(estimate, 0.9, cell=int(cell))
                assert error <= EPSILON, (name, int(cell), error)


class TestProductionDifferential:
    """Weighted (heavy-tailed) cells: the ε contract degrades gracefully.

    A cell with ``n`` rows has rank granularity ``1/n``, so tiny cells
    cannot be graded at a fixed ε; the contract checked here is
    ``rank_error <= max(EPSILON, 2/n)`` per cell — the fixed contract
    for populated cells, within two exact ranks for sparse ones.
    """

    def _cell_epsilon(self, oracle, cell) -> float:
        return max(EPSILON, 2.0 / oracle.count(int(cell)))

    def test_global_quantiles_within_epsilon(self, production):
        service, oracle, backends = production
        spec = QuerySpec(kind="quantile", quantiles=QS)
        for name in backends:
            response = service.execute(spec, backend=name)
            for q in QS:
                error = oracle.rank_error(response.estimates[qkey(q)], q)
                assert error <= EPSILON, (name, q, error)

    def test_grouped_heavy_tailed_cells(self, production):
        service, oracle, backends = production
        spec = QuerySpec(kind="group_by", quantiles=(0.5, 0.9),
                         group_dimension="cell")
        for name in backends:
            if name == "window":
                continue
            response = service.execute(spec, backend=name)
            assert len(response.groups) == 40
            for cell, estimates in response.groups.items():
                budget = self._cell_epsilon(oracle, cell)
                for q in (0.5, 0.9):
                    error = oracle.rank_error(estimates[qkey(q)], q,
                                              cell=int(cell))
                    assert error <= budget, (name, int(cell), q, error)

    def test_single_cell_answers_bit_exact_across_backends(self, production):
        # Bit-exactness holds wherever an answer is one cell's sketch
        # (the harness's query shapes): identical batches accumulate in
        # identical vectorized passes, so per-cell moments — and hence
        # estimates — match bit for bit.  Global multi-cell roll-ups
        # merge in backend-specific fold orders and only promise ε.
        service, oracle, backends = production
        for cell in (0, 7, 39):
            spec = QuerySpec(kind="quantile", quantiles=QS,
                             filters={"cell": cell}, report_moments=True)
            reference = service.execute(spec, backend="cube")
            for name in ("druid", "packed", "cluster"):
                response = service.execute(spec, backend=name)
                assert response.moments == reference.moments, (name, cell)
                assert response.estimates == reference.estimates, (name, cell)
