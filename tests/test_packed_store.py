"""Property-based equivalence and serialization tests for the packed store.

The contract under test: every vectorized operation of
:class:`repro.store.PackedSketchStore` must agree with the sequential
per-sketch code path — bit-for-bit for counts and power sums, and to
1e-12 in estimated quantiles — including log-valid/invalid mixes and
empty rows.  The bulk wire format is locked in by round-trip and
adversarial fuzz tests before any second backend depends on it.
"""

import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import (EmptySketchError, IncompatibleSketchError,
                               SketchError)
from repro.core.sketch import MomentsSketch, merge_all
from repro.store import PackedSketchStore, pack
from repro.summaries import MomentsSummary

K = 5

#: Values spanning sign changes so log-moment poisoning is exercised.
value_lists = st.lists(
    st.floats(min_value=-50.0, max_value=1e4,
              allow_nan=False, allow_infinity=False),
    min_size=0, max_size=8)

#: A batch of sketch payloads; empty inner lists give empty rows.
sketch_batches = st.lists(value_lists, min_size=1, max_size=10)


def build_sketches(batches, k=K, track_log=True):
    sketches = []
    for values in batches:
        sketch = MomentsSketch(k=k, track_log=track_log)
        if values:
            sketch.accumulate(values)
        sketches.append(sketch)
    return sketches


def assert_sketch_equal(expected: MomentsSketch, got: MomentsSketch):
    """Bit-for-bit agreement on everything estimation reads."""
    assert got.count == expected.count
    assert np.array_equal(got.power_sums, expected.power_sums)
    assert got.min == expected.min and got.max == expected.max
    assert got.log_valid == expected.log_valid
    if expected.log_valid:
        assert np.array_equal(got.log_sums, expected.log_sums)


class TestBatchMergeEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(sketch_batches)
    def test_full_merge_matches_sequential_loop(self, batches):
        sketches = build_sketches(batches)
        store = PackedSketchStore.from_sketches(sketches)
        assert_sketch_equal(merge_all(sketches), store.batch_merge())

    @settings(max_examples=60, deadline=None)
    @given(sketch_batches, st.data())
    def test_subset_with_duplicates_matches_loop(self, batches, data):
        sketches = build_sketches(batches)
        store = PackedSketchStore.from_sketches(sketches)
        indices = data.draw(st.lists(
            st.integers(min_value=0, max_value=len(sketches) - 1),
            min_size=1, max_size=20))
        expected = merge_all([sketches[i] for i in indices])
        assert_sketch_equal(expected, store.batch_merge(indices))

    @settings(max_examples=25, deadline=None)
    @given(sketch_batches)
    def test_group_merge_matches_per_group_loop(self, batches):
        sketches = build_sketches(batches)
        store = PackedSketchStore.from_sketches(sketches)
        rng = np.random.default_rng(len(sketches))
        rows = rng.integers(0, len(sketches), 15)
        gids = rng.integers(0, 4, 15)
        groups = store.batch_merge_groups(rows, gids)
        assert set(groups) == {int(g) for g in np.unique(gids)}
        for gid, merged in groups.items():
            expected = merge_all([sketches[i] for i in rows[gids == gid]])
            assert_sketch_equal(expected, merged)

    def test_all_empty_rows_merge_to_empty(self):
        store = PackedSketchStore.from_sketches(
            [MomentsSketch(k=K) for _ in range(5)])
        merged = store.batch_merge()
        assert merged.is_empty
        assert merged.min == np.inf and merged.max == -np.inf
        assert merged.log_valid

    def test_contiguous_range_fast_path_matches_gather(self):
        rng = np.random.default_rng(7)
        sketches = build_sketches([rng.lognormal(0, 1, 5).tolist()
                                   for _ in range(30)])
        store = PackedSketchStore.from_sketches(sketches)
        contiguous = store.batch_merge(np.arange(4, 19))
        shuffled_back = store.batch_merge(
            np.asarray([4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18]))
        expected = merge_all(sketches[4:19])
        assert_sketch_equal(expected, contiguous)
        assert_sketch_equal(expected, shuffled_back)

    def test_quantiles_agree_with_sequential_merge(self):
        rng = np.random.default_rng(11)
        sketches = build_sketches(
            [rng.lognormal(1, 1, rng.integers(5, 40)).tolist()
             for _ in range(50)], k=8)
        store = PackedSketchStore.from_sketches(sketches)
        for phi in (0.1, 0.5, 0.9, 0.99):
            loop = MomentsSummary(k=8)
            loop.sketch = merge_all(sketches)
            packed = MomentsSummary(k=8)
            packed.sketch = store.batch_merge()
            assert packed.quantile(phi) == pytest.approx(
                loop.quantile(phi), rel=1e-12)

    def test_empty_selection_rejected(self):
        store = PackedSketchStore.from_sketches([MomentsSketch(k=K)])
        with pytest.raises(EmptySketchError):
            store.batch_merge(np.zeros(0, dtype=int))
        with pytest.raises(EmptySketchError):
            PackedSketchStore(k=K).batch_merge()

    def test_out_of_range_indices_rejected(self):
        store = PackedSketchStore.from_sketches([MomentsSketch(k=K)])
        with pytest.raises(SketchError):
            store.batch_merge([1])
        with pytest.raises(SketchError):
            store.batch_merge([-1])
        with pytest.raises(SketchError):
            store.batch_merge([[0]])


class TestBatchAccumulate:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=5),
                  st.floats(min_value=-10, max_value=1e3,
                            allow_nan=False, allow_infinity=False)),
        min_size=0, max_size=60))
    def test_matches_per_sketch_accumulate(self, pairs):
        store = PackedSketchStore(k=K, capacity=6)
        reference = [MomentsSketch(k=K) for _ in range(6)]
        for _ in range(6):
            store.new_row()
        rows = np.asarray([row for row, _ in pairs], dtype=int)
        values = np.asarray([value for _, value in pairs])
        store.batch_accumulate(rows, values)
        for row in range(6):
            chunk = values[rows == row]
            if chunk.size:
                reference[row].accumulate(chunk)
            assert_sketch_equal(reference[row], store.sketch_at(row))

    def test_poisoned_row_does_not_leak_into_neighbours(self):
        store = PackedSketchStore(k=3, capacity=3)
        for _ in range(3):
            store.new_row()
        rows = np.asarray([0, 1, 2, 1, 0])
        values = np.asarray([1.0, -1.0, 2.0, 3.0, 4.0])
        store.batch_accumulate(rows, values)
        assert not store.log_valid[1]
        assert store.log_valid[0] and store.log_valid[2]
        expected = MomentsSketch(k=3)
        expected.accumulate([1.0, 4.0])
        assert np.array_equal(store.log_sums[0], expected.log_sums)

    def test_nan_rejected(self):
        store = PackedSketchStore(k=K, capacity=1)
        store.new_row()
        with pytest.raises(SketchError):
            store.batch_accumulate([0], [np.nan])

    def test_misaligned_shapes_rejected(self):
        store = PackedSketchStore(k=K, capacity=1)
        store.new_row()
        with pytest.raises(SketchError):
            store.batch_accumulate([0, 0], [1.0])

    def test_out_of_range_row_rejected(self):
        store = PackedSketchStore(k=K, capacity=1)
        store.new_row()
        with pytest.raises(SketchError):
            store.batch_accumulate([1], [1.0])


class TestRowOperations:
    def test_append_roundtrip_preserves_state(self, lognormal_sketch):
        store = PackedSketchStore(k=lognormal_sketch.k)
        row = store.append(lognormal_sketch)
        assert_sketch_equal(lognormal_sketch, store.sketch_at(row))

    def test_growth_preserves_rows(self):
        store = PackedSketchStore(k=K, capacity=2)
        sketches = build_sketches([[float(i + 1)] * 3 for i in range(40)])
        for sketch in sketches:
            store.append(sketch)
        assert len(store) == 40
        for i, sketch in enumerate(sketches):
            assert_sketch_equal(sketch, store.sketch_at(i))

    def test_view_sketch_is_zero_copy(self):
        store = PackedSketchStore.from_sketches(
            build_sketches([[1.0, 2.0, 3.0]]))
        view = store.sketch_at(0, copy=False)
        assert np.shares_memory(view.power_sums, store.power_sums)
        copied = store.sketch_at(0, copy=True)
        copied.power_sums[1] = 123.0
        assert store.power_sums[0, 1] != 123.0

    def test_merge_into_row_matches_sketch_merge(self):
        base = MomentsSketch.from_data([1.0, 2.0], k=K)
        other = MomentsSketch.from_data([3.0, 4.0], k=K)
        store = PackedSketchStore.from_sketches([base])
        store.merge_into_row(0, other)
        assert_sketch_equal(base.copy().merge(other), store.sketch_at(0))

    def test_merge_log_invalid_sketch_poisons_row(self):
        base = MomentsSketch.from_data([1.0, 2.0], k=K)
        poisoned = MomentsSketch.from_data([-1.0], k=K)
        store = PackedSketchStore.from_sketches([base])
        store.merge_into_row(0, poisoned)
        assert not store.log_valid[0]

    def test_clear_row_restores_empty_state(self):
        store = PackedSketchStore.from_sketches(
            build_sketches([[-5.0, 2.0]]))
        assert not store.log_valid[0]
        store.clear_row(0)
        assert_sketch_equal(MomentsSketch(k=K), store.sketch_at(0))

    def test_order_mismatch_rejected(self):
        store = PackedSketchStore(k=K)
        with pytest.raises(IncompatibleSketchError):
            store.append(MomentsSketch(k=K + 1))

    def test_non_sketch_rejected(self):
        store = PackedSketchStore(k=K)
        with pytest.raises(IncompatibleSketchError):
            store.append("not a sketch")

    def test_invalid_order_rejected(self):
        with pytest.raises(SketchError):
            PackedSketchStore(k=0)

    def test_pack_alias(self):
        sketches = build_sketches([[1.0], [2.0]])
        assert len(pack(sketches)) == 2


class TestBulkSerialization:
    @settings(max_examples=40, deadline=None)
    @given(sketch_batches, st.booleans())
    def test_roundtrip_is_exact(self, batches, track_log):
        sketches = build_sketches(batches, track_log=track_log)
        store = PackedSketchStore.from_sketches(sketches)
        blob = store.to_bytes()
        restored = PackedSketchStore.from_bytes(blob)
        assert restored.k == store.k
        assert restored.track_log == store.track_log
        assert len(restored) == len(store)
        for row in range(len(store)):
            original = store.sketch_at(row)
            # Rows poisoned mid-accumulate may carry partial log sums the
            # wire format does not promise to preserve exactly (the same
            # convention as the per-sketch MSK1 format) — everything
            # estimation reads must round-trip bit-for-bit.
            assert_sketch_equal(original, restored.sketch_at(row))
        assert restored.to_bytes() == blob

    def test_empty_store_roundtrip(self):
        store = PackedSketchStore(k=K)
        restored = PackedSketchStore.from_bytes(store.to_bytes())
        assert len(restored) == 0
        assert restored.k == K

    def test_size_bytes_matches_serialized_length(self):
        store = PackedSketchStore.from_sketches(
            build_sketches([[1.0], [2.0], []]))
        assert store.size_bytes() == len(store.to_bytes())

    def test_truncated_blob_rejected(self):
        store = PackedSketchStore.from_sketches(build_sketches([[1.0], [2.0]]))
        blob = store.to_bytes()
        for cut in (0, 4, len(blob) // 2, len(blob) - 1):
            with pytest.raises(SketchError):
                PackedSketchStore.from_bytes(blob[:cut])

    def test_trailing_garbage_rejected(self):
        blob = PackedSketchStore.from_sketches(
            build_sketches([[1.0]])).to_bytes()
        with pytest.raises(SketchError):
            PackedSketchStore.from_bytes(blob + b"\x00" * 8)

    def test_bad_magic_rejected(self):
        blob = PackedSketchStore(k=K).to_bytes()
        with pytest.raises(SketchError):
            PackedSketchStore.from_bytes(b"XXXX" + blob[4:])

    def test_corrupt_order_rejected(self):
        blob = bytearray(PackedSketchStore(k=K).to_bytes())
        blob[4] = 0  # k = 0
        with pytest.raises(SketchError):
            PackedSketchStore.from_bytes(bytes(blob))
        blob[4] = 200  # k far beyond MAX_ORDER
        with pytest.raises(SketchError):
            PackedSketchStore.from_bytes(bytes(blob))

    def test_header_count_mismatch_rejected(self):
        store = PackedSketchStore.from_sketches(build_sketches([[1.0], [2.0]]))
        blob = bytearray(store.to_bytes())
        # Overwrite the uint64 row count with a lie.
        struct.pack_into("<Q", blob, 8, 7)
        with pytest.raises(SketchError):
            PackedSketchStore.from_bytes(bytes(blob))


class TestBatchMergeBy:
    def test_keys_map_to_group_merges(self):
        rng = np.random.default_rng(13)
        sketches = build_sketches([rng.lognormal(0, 1, 4).tolist()
                                   for _ in range(12)])
        store = PackedSketchStore.from_sketches(sketches)
        rows = list(range(12))
        keys = ["a", "b", "a", "c", "b", "a", "c", "a", "b", "c", "a", "b"]
        merged = store.batch_merge_by(rows, keys)
        assert list(merged) == ["a", "b", "c"]  # first-seen order
        for key in "abc":
            expected = merge_all([sketches[i] for i, k in zip(rows, keys)
                                  if k == key])
            assert_sketch_equal(expected, merged[key])

    def test_tuple_keys_supported(self):
        sketches = build_sketches([[1.0], [2.0], [3.0]])
        store = PackedSketchStore.from_sketches(sketches)
        merged = store.batch_merge_by([0, 1, 2], [("x", 1), ("y", 2), ("x", 1)])
        assert merged[("x", 1)].count == 2
        assert merged[("y", 2)].count == 1
