"""Tests for the unified declarative ingestion API (repro.ingest)."""

import json

import numpy as np
import pytest

from repro.api import QueryService, QuerySpec, qkey
from repro.cluster import ClusterCoordinator
from repro.core.errors import BackpressureError, IngestError, QueryError
from repro.datacube import CubeSchema, DataCube
from repro.druid import DruidEngine, MomentsSketchAggregator
from repro.ingest import (BACKENDS, IngestReport, IngestSession, IngestSpec,
                          WriteBackend, WriteBuffer, WriteOutcome,
                          as_write_backend, build_target, make_batch,
                          register_write_adapter, write_columns, write_rows)
from repro.store import PackedSketchStore
from repro.summaries.moments_summary import MomentsSummary
from repro.window import StreamingWindowMonitor


@pytest.fixture()
def data():
    rng = np.random.default_rng(7)
    values = rng.lognormal(1.0, 1.0, 3000)
    dims = (np.arange(values.size) % 11).astype(int)
    return values, dims


def fresh_cube(k=8):
    return DataCube(CubeSchema(("d",)), lambda: MomentsSummary(k=k))


MOMENTS_SPEC = QuerySpec(kind="quantile", quantiles=(0.5, 0.99),
                         report_moments=True)


# ----------------------------------------------------------------------
# IngestSpec
# ----------------------------------------------------------------------

class TestIngestSpec:
    def test_json_round_trip(self):
        spec = IngestSpec(backend="cluster", dimensions=("a", "b"), k=6,
                          granularity=60.0, num_shards=8, replication=3,
                          dedup_key="load-1", flush_rows=1000,
                          flush_bytes=1 << 20)
        assert IngestSpec.from_json(spec.to_json()) == spec

    def test_defaults_omitted_from_json(self):
        assert json.loads(IngestSpec().to_json()) == {}

    def test_unknown_backend_rejected(self):
        with pytest.raises(IngestError):
            IngestSpec(backend="kafka")

    def test_unknown_field_rejected(self):
        with pytest.raises(IngestError):
            IngestSpec.from_dict({"no_such_field": 1})

    def test_invalid_values_rejected(self):
        with pytest.raises(IngestError):
            IngestSpec(flush_rows=0)
        with pytest.raises(IngestError):
            IngestSpec(granularity=-1.0)
        with pytest.raises(IngestError):
            IngestSpec(dimensions=("a", "a"))
        with pytest.raises(IngestError):
            IngestSpec(flush_rows=100, max_pending_rows=50)

    def test_sequence_stamps(self):
        assert IngestSpec().sequence_for(3) is None
        assert IngestSpec(dedup_key="x").sequence_for(3) == ("x", 3)

    def test_backend_names_cover_adapters(self):
        assert set(BACKENDS) == {"cube", "druid", "packed", "window",
                                 "cluster", "fanout", "tiered"}


# ----------------------------------------------------------------------
# WriteBuffer
# ----------------------------------------------------------------------

class TestWriteBuffer:
    def test_columnar_accumulation_and_drain(self):
        buffer = WriteBuffer()
        buffer.append([1.0, 2.0], dims=[["a", "b"]])
        buffer.append([3.0], dims=[["c"]])
        assert buffer.rows == 3
        batch = buffer.drain(sequence=("k", 0))
        assert batch.values.tolist() == [1.0, 2.0, 3.0]
        assert batch.dims[0].tolist() == ["a", "b", "c"]
        assert batch.sequence == ("k", 0)
        assert buffer.is_empty

    def test_misaligned_columns_rejected(self):
        buffer = WriteBuffer()
        with pytest.raises(IngestError):
            buffer.append([1.0, 2.0], dims=[["a"]])
        with pytest.raises(IngestError):
            buffer.append([1.0], timestamps=[0.0, 1.0])

    def test_arity_fixed_by_first_append(self):
        buffer = WriteBuffer()
        buffer.append([1.0], dims=[["a"]])
        with pytest.raises(IngestError):
            buffer.append([1.0], dims=[["a"], ["b"]])

    def test_cannot_mix_timestamped_appends(self):
        buffer = WriteBuffer()
        buffer.append([1.0], timestamps=[0.0])
        with pytest.raises(IngestError):
            buffer.append([2.0])

    def test_drain_empty_rejected(self):
        with pytest.raises(IngestError):
            WriteBuffer().drain()

    def test_nbytes_tracks_payload(self):
        buffer = WriteBuffer()
        buffer.append(np.ones(100), dims=[np.arange(100)],
                      timestamps=np.zeros(100))
        assert buffer.nbytes >= 100 * 24


# ----------------------------------------------------------------------
# Session mechanics
# ----------------------------------------------------------------------

class TestIngestSession:
    def test_row_count_trigger_micro_batches(self, data):
        values, dims = data
        session = IngestSession(fresh_cube(), flush_rows=1000)
        for start in range(0, values.size, 250):
            session.append_columns(values[start:start + 250],
                                   dims=[dims[start:start + 250]])
        report = session.close()
        assert report is None or report.trigger == "close"
        assert [r.trigger for r in session.reports[:-1]] == ["rows", "rows"]
        assert session.total_rows == values.size
        assert sum(r.rows for r in session.reports) == values.size

    def test_byte_budget_trigger(self, data):
        values, dims = data
        session = IngestSession(fresh_cube(), flush_rows=None,
                                flush_bytes=4096)
        session.append_columns(values[:1000], dims=[dims[:1000]])
        assert session.reports and session.reports[0].trigger == "bytes"

    def test_explicit_flush_and_reports(self, data):
        values, dims = data
        session = IngestSession(fresh_cube())
        session.append_columns(values, dims=[dims])
        report = session.flush()
        assert isinstance(report, IngestReport)
        assert report.rows == values.size
        assert report.cells == 11
        assert report.trigger == "explicit"
        assert report.write_seconds >= report.pack_seconds
        assert session.flush() is None  # nothing pending

    def test_append_row_objects(self):
        cube = fresh_cube()
        with IngestSession(cube) as session:
            session.append([{"d": "x", "value": 1.0},
                            {"d": "y", "value": 2.0}])
            session.append([("x", 3.0)])
        assert cube.num_cells == 2
        assert session.total_rows == 3

    def test_tuple_rows_with_timestamps(self):
        engine = DruidEngine(dimensions=("d",),
                             aggregators={"m": MomentsSketchAggregator(k=6)},
                             granularity=10.0)
        with IngestSession(engine) as session:
            session.append([(0.0, "x", 1.0), (25.0, "x", 2.0)])
        assert len(engine.segments) == 2

    def test_bad_row_shapes_rejected(self):
        session = IngestSession(fresh_cube())
        with pytest.raises(IngestError):
            session.append([("x", 1.0, 2.0, 3.0)])
        with pytest.raises(IngestError):
            session.append([{"value": 1.0}])  # missing dimension key

    def test_malformed_later_rows_rejected(self):
        # Shape problems past rows[0] must still surface as IngestError.
        session = IngestSession(fresh_cube())
        with pytest.raises(IngestError):
            session.append([{"d": "a", "value": 1.0}, {"value": 2.0}])
        with pytest.raises(IngestError):
            session.append([("a", 1.0), ("b",)])
        assert session.pending_rows == 0

    def test_closed_session_rejects_appends(self):
        session = IngestSession(fresh_cube())
        session.close()
        with pytest.raises(IngestError):
            session.append_columns([1.0], dims=[["x"]])

    def test_backpressure_without_auto_flush(self, data):
        values, dims = data
        session = IngestSession(fresh_cube(), auto_flush=False,
                                flush_rows=None, max_pending_rows=100)
        session.append_columns(values[:80], dims=[dims[:80]])
        with pytest.raises(BackpressureError):
            session.append_columns(values[:50], dims=[dims[:50]])
        # The over-limit rows were rejected *before* buffering, so the
        # caller can flush and re-send them without double-counting.
        assert session.pending_rows == 80
        session.flush()
        session.append_columns(values[:50], dims=[dims[:50]])  # fine now
        session.close()
        assert session.total_rows == 130

    def test_spec_dimension_mismatch_rejected(self):
        with pytest.raises(IngestError):
            IngestSession(fresh_cube(), dimensions=("other",))

    def test_spec_backend_mismatch_rejected(self):
        with pytest.raises(IngestError):
            IngestSession(fresh_cube(), backend="druid")

    def test_query_service_closes_the_loop(self, data):
        values, dims = data
        session = IngestSession(fresh_cube())
        session.append_columns(values, dims=[dims])
        # query() flushes pending rows itself.
        response = session.query(MOMENTS_SPEC)
        assert response.backend == "cube"
        assert response.count == values.size

    def test_write_rows_one_shot(self):
        cube = fresh_cube()
        reports = write_rows(cube, [{"d": "x", "value": 1.0}])
        assert len(reports) == 1 and reports[0].rows == 1


# ----------------------------------------------------------------------
# Adapter registry
# ----------------------------------------------------------------------

class TestWriteAdapterRegistry:
    def test_unknown_object_rejected(self):
        with pytest.raises(IngestError):
            as_write_backend(object())

    def test_backend_passes_through(self):
        backend = as_write_backend(fresh_cube())
        assert as_write_backend(backend) is backend

    def test_registry_is_extensible(self):
        class Sink:
            pass

        class SinkBackend(WriteBackend):
            name = "sink"

            def __init__(self, sink, spec=None):
                self.sink = sink

            def write(self, batch):
                return WriteOutcome(cells=0)

            def read_target(self):
                return self.sink

        from repro.ingest.backends import WRITE_ADAPTERS
        register_write_adapter(lambda obj: isinstance(obj, Sink), SinkBackend)
        try:
            assert as_write_backend(Sink()).name == "sink"
        finally:
            WRITE_ADAPTERS.pop()

    def test_build_target_validation(self):
        with pytest.raises(IngestError):
            build_target(IngestSpec())  # no backend
        with pytest.raises(IngestError):
            build_target(IngestSpec(backend="cube"))  # no dimensions
        with pytest.raises(IngestError):
            build_target(IngestSpec(backend="window"))  # no pane policy
        cube = build_target(IngestSpec(backend="cube", dimensions=("d",)))
        assert isinstance(cube, DataCube)


# ----------------------------------------------------------------------
# Uniform boundary validation (satellite: IngestError everywhere)
# ----------------------------------------------------------------------

class TestBoundaryValidation:
    def test_druid_ingest_length_mismatch(self):
        engine = DruidEngine(dimensions=("d",),
                             aggregators={"m": MomentsSketchAggregator(k=6)})
        with pytest.raises(IngestError):
            engine.ingest(np.zeros(3), [np.array(["a", "b", "c"])],
                          np.ones(2))
        with pytest.raises(IngestError):
            engine.ingest(np.zeros(2), [np.array(["a", "b", "c"])],
                          np.ones(3))
        with pytest.raises(IngestError):
            engine.ingest(np.zeros(2), [], np.ones(2))

    def test_node_ingest_shard_length_mismatch(self):
        from repro.cluster.node import DataNode
        node = DataNode("n0", ("d",),
                        {"m": MomentsSketchAggregator(k=6)})
        with pytest.raises(IngestError):
            node.ingest_shard(0, np.zeros(2), [np.array(["a"])], np.ones(2))
        with pytest.raises(IngestError):
            node.ingest_shard(0, None, [np.array(["a"])], np.ones(1))

    def test_cube_ingest_errors_still_query_errors(self):
        # IngestError subclasses QueryError, so pre-existing callers
        # guarding ingest with `except QueryError` keep working.
        assert issubclass(IngestError, QueryError)
        cube = fresh_cube()
        with pytest.raises(QueryError):
            cube.ingest([np.array([1, 2])], np.array([1.0]))
        with pytest.raises(IngestError):
            cube.ingest([np.array([1])], np.array([]))

    def test_cluster_ingest_needs_timestamps(self):
        cluster = ClusterCoordinator(
            dimensions=("d",), aggregators={"m": MomentsSketchAggregator(k=6)},
            num_shards=4, replication=1, nodes=["n0"])
        backend = as_write_backend(cluster)
        with pytest.raises(IngestError):
            backend.write(make_batch([1.0], dims=[["a"]]))


# ----------------------------------------------------------------------
# Packed store sessions
# ----------------------------------------------------------------------

class TestPackedStoreSessions:
    def test_dimensionless_store_accumulates_one_row(self, data):
        values, _ = data
        store = PackedSketchStore(k=8)
        with IngestSession(store) as session:
            session.append_columns(values)
        assert len(store) == 1
        reference = PackedSketchStore(k=8)
        reference.append()
        reference.accumulate_row(0, values)
        assert store.power_sums[0].tolist() == reference.power_sums[0].tolist()

    def test_dimensioned_session_needs_empty_store(self, data):
        values, _ = data
        store = PackedSketchStore(k=8)
        store.accumulate_row(store.new_row(), values[:100])
        with pytest.raises(IngestError):
            IngestSession(store, dimensions=("d",))  # keyless rows exist

    def test_keyed_store_matches_packed_cube_bits(self, data):
        values, dims = data
        store = PackedSketchStore(k=8)
        spec = IngestSpec(dimensions=("d",))
        with IngestSession(store, spec) as session:
            session.append_columns(values, dims=[dims])
        cube = fresh_cube(k=8)
        cube.ingest([dims], values)
        assert len(store) == cube.num_cells
        assert np.array_equal(store.power_sums[:len(store)],
                              cube.store.power_sums[:len(store)])
        # The session's read target can answer filtered/grouped specs.
        response = session.query(QuerySpec(kind="group_by",
                                           group_dimension="d",
                                           quantiles=(0.9,)))
        assert len(response.groups) == 11


# ----------------------------------------------------------------------
# Cluster sessions: routing + idempotent replay
# ----------------------------------------------------------------------

class TestClusterIdempotency:
    @pytest.fixture()
    def cluster(self):
        return ClusterCoordinator(
            dimensions=("cell",),
            aggregators={"m": MomentsSketchAggregator(k=8)},
            num_shards=8, replication=2, granularity=1.0,
            nodes=["n0", "n1", "n2"])

    def test_replayed_batch_is_noop_on_every_replica(self, cluster, data):
        values, dims = data
        timestamps = cluster.shard_ids([dims]).astype(float)
        backend = as_write_backend(cluster)
        batch = make_batch(values, dims=[dims], timestamps=timestamps,
                           sequence=("load", 0))
        first = backend.write(batch)
        service = QueryService(cluster=cluster)
        before = service.execute(MOMENTS_SPEC)
        replay = backend.write(batch)
        after = service.execute(MOMENTS_SPEC)
        assert first.replicas > 0 and replay.replicas == 0
        assert replay.cells == 0
        assert after.moments == before.moments
        assert after.count == before.count == values.size

    def test_distinct_sequences_both_apply(self, cluster, data):
        values, dims = data
        timestamps = cluster.shard_ids([dims]).astype(float)
        session = IngestSession(cluster, dedup_key="load")
        session.append_columns(values[:1000], dims=[dims[:1000]],
                               timestamps=timestamps[:1000])
        session.flush()
        session.append_columns(values[1000:], dims=[dims[1000:]],
                               timestamps=timestamps[1000:])
        session.flush()
        assert [r.sequence for r in session.reports] == [("load", 0),
                                                         ("load", 1)]
        response = session.query(MOMENTS_SPEC)
        assert response.count == values.size

    def test_idempotency_ledger_survives_replication(self, cluster, data):
        # A replica repaired from a snapshot must also treat the old
        # batch as applied: the ledger travels in ShardSnapshot.applied.
        values, dims = data
        timestamps = cluster.shard_ids([dims]).astype(float)
        backend = as_write_backend(cluster)
        batch = make_batch(values, dims=[dims], timestamps=timestamps,
                           sequence=("load", 0))
        backend.write(batch)
        service = QueryService(cluster=cluster)
        before = service.execute(MOMENTS_SPEC)
        cluster.fail_node("n2", repair=True)  # re-replicates from snapshots
        replay = backend.write(batch)
        assert replay.replicas == 0
        assert service.execute(MOMENTS_SPEC).moments == before.moments

    def test_failed_flush_loses_nothing_and_retry_dedupes(self, data):
        values, dims = data
        cluster = ClusterCoordinator(
            dimensions=("cell",),
            aggregators={"m": MomentsSketchAggregator(k=8)},
            num_shards=8, replication=1, granularity=1.0,
            nodes=["n0", "n1"])
        timestamps = cluster.shard_ids([dims]).astype(float)
        session = IngestSession(cluster, dedup_key="retry")
        session.append_columns(values, dims=[dims], timestamps=timestamps)
        cluster.fail_node("n1", repair=False)  # some shards unroutable
        from repro.core.errors import ClusterError
        with pytest.raises(ClusterError):
            session.flush()
        # The rows are back in the buffer and no replica applied the
        # stamp (owners are resolved before any apply).
        assert session.pending_rows == values.size
        assert session.reports == []
        cluster.restore_node("n1")
        report = session.flush()
        assert report.rows == values.size
        assert report.sequence == ("retry", 0)
        response = session.query(MOMENTS_SPEC)
        assert response.count == values.size  # applied exactly once

    def test_legacy_empty_cluster_ingest_is_noop(self, cluster):
        cluster.ingest(np.array([]), [np.array([], dtype=int)],
                       np.array([]))  # zero-row poll, pre-API semantics
        assert cluster.num_cells == 0

    def test_sequenceless_writes_still_accumulate(self, cluster):
        # Legacy ClusterCoordinator.ingest carries no sequence: calling
        # it twice intentionally double-counts (pre-API behavior).
        values = np.ones(100)
        dims = np.zeros(100, dtype=int)
        timestamps = np.zeros(100)
        cluster.ingest(timestamps, [dims], values)
        cluster.ingest(timestamps, [dims], values)
        response = QueryService(cluster=cluster).execute(MOMENTS_SPEC)
        assert response.count == 200


# ----------------------------------------------------------------------
# Fan-out sessions
# ----------------------------------------------------------------------

class TestFanOut:
    def test_one_session_feeds_three_backends(self, data):
        values, dims = data
        cube = fresh_cube()
        engine = DruidEngine(dimensions=("d",),
                             aggregators={"m": MomentsSketchAggregator(k=8)},
                             granularity=1e12)
        cluster = ClusterCoordinator(
            dimensions=("d",), aggregators={"m": MomentsSketchAggregator(k=8)},
            num_shards=4, replication=2, granularity=1e12,
            nodes=["n0", "n1"])
        timestamps = np.zeros(values.size)
        with IngestSession([cube, engine, cluster]) as session:
            session.append_columns(values, dims=[dims],
                                   timestamps=timestamps)
        service = session.query_service()
        assert set(service.backends) == {"cube", "druid", "cluster"}
        responses = {name: service.execute(MOMENTS_SPEC, backend=name)
                     for name in service.backends}
        assert all(r.count == values.size for r in responses.values())
        # One segment (all timestamps in chunk 0): the cube and Druid
        # folds coincide bit for bit.  The cluster folds per-shard
        # partials — a different association of the same float adds —
        # so it agrees to relative 1e-12, not to the last ulp.
        assert responses["druid"].estimates == responses["cube"].estimates
        for key, value in responses["cube"].estimates.items():
            assert responses["cluster"].estimates[key] == pytest.approx(
                value, rel=1e-12)

    def test_fanout_arity_mismatch_rejected(self):
        two = DataCube(CubeSchema(("a", "b")), lambda: MomentsSummary(k=6))
        with pytest.raises(IngestError):
            IngestSession([fresh_cube(), two])

    def test_fanout_retry_skips_children_that_applied(self):
        # A mid-fan-out failure followed by the session's flush retry
        # must not double-count children that already took the batch.
        from repro.core.errors import ClusterError
        cube = fresh_cube()
        cluster = ClusterCoordinator(
            dimensions=("d",), aggregators={"m": MomentsSketchAggregator(k=6)},
            num_shards=4, replication=1, granularity=1.0, nodes=["n0", "n1"])
        session = IngestSession([cube, cluster], dedup_key="fan")
        values = np.arange(1.0, 11.0)
        dims = np.zeros(10, dtype=int)
        session.append_columns(values, dims=[dims],
                               timestamps=np.zeros(10))
        victim = cluster.ring.owners(cluster.shard_of_key((0,)))[0]
        cluster.fail_node(victim, repair=False)
        with pytest.raises(ClusterError):
            session.flush()  # cube applied, cluster refused
        assert session.pending_rows == 10
        cluster.restore_node(victim)
        report = session.flush()
        assert report.rows == 10
        service = session.query_service()
        counts = {name: service.execute(MOMENTS_SPEC, backend=name).count
                  for name in service.backends}
        assert counts == {"cube": 10.0, "cluster": 10.0}


# ----------------------------------------------------------------------
# Window sessions
# ----------------------------------------------------------------------

class TestWindowSessions:
    def test_session_matches_legacy_monitor(self):
        rng = np.random.default_rng(3)
        stream = rng.lognormal(1.0, 1.0, 2200)
        threshold = float(np.quantile(stream, 0.9))
        legacy = StreamingWindowMonitor(pane_size=100, window_panes=5,
                                        threshold=threshold, phi=0.95, k=8)
        legacy_alerts = legacy.ingest(stream)
        fresh = StreamingWindowMonitor(pane_size=100, window_panes=5,
                                       threshold=threshold, phi=0.95, k=8)
        with IngestSession(fresh) as session:
            session.append_columns(stream)
        report = session.reports[0]
        assert report.cells == 22  # sealed panes
        assert report.alerts == len(legacy_alerts)
        assert fresh.current_window.power_sums.tolist() \
            == legacy.current_window.power_sums.tolist()
        # The sealed panes answer QuerySpecs right after the flush.
        response = session.query(QuerySpec(kind="quantile", quantiles=(0.5,)))
        assert response.backend == "window"

    def test_query_before_any_sealed_pane_rejected(self):
        monitor = StreamingWindowMonitor(pane_size=100, window_panes=2,
                                         threshold=1.0)
        session = IngestSession(monitor)
        session.append_columns(np.ones(10))
        with pytest.raises(QueryError):
            session.query_service()


# ----------------------------------------------------------------------
# One-shot shims stay bit-exact
# ----------------------------------------------------------------------

class TestLegacyShims:
    def test_write_columns_equals_legacy_cube(self, data):
        values, dims = data
        via_shim = fresh_cube()
        via_shim.ingest([dims], values)
        via_api = fresh_cube()
        report = write_columns(via_api, values, dims=[dims])
        assert report.cells == 11
        assert np.array_equal(
            via_shim.store.power_sums[:via_shim.num_cells],
            via_api.store.power_sums[:via_api.num_cells])
