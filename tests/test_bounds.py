"""Tests for Markov and RTT moment bounds (Section 5.1, Appendix E)."""

import numpy as np
import pytest

from repro.core import MomentsSketch
from repro.core.bounds import (
    RankBounds,
    markov_bound,
    quantile_error_bound,
    rtt_bound,
)
from repro.core.errors import BoundError


@pytest.fixture(scope="module", params=["gauss", "expon", "lognorm", "uniform"])
def dataset(request):
    rng = np.random.default_rng(hash(request.param) % 2 ** 31)
    data = {
        "gauss": lambda: rng.normal(0, 1, 20_000),
        "expon": lambda: rng.exponential(1, 20_000),
        "lognorm": lambda: rng.lognormal(0.5, 1.2, 20_000),
        "uniform": lambda: rng.uniform(-3, 3, 20_000),
    }[request.param]()
    return request.param, np.sort(data), MomentsSketch.from_data(data, k=10)


QUERY_PHIS = (0.05, 0.2, 0.5, 0.8, 0.95, 0.99)


class TestRankBounds:
    def test_fraction_and_width(self):
        bounds = RankBounds(lower=100.0, upper=300.0, count=1000.0)
        assert bounds.fraction() == (0.1, 0.3)
        assert bounds.width == 200.0

    def test_intersect_takes_tighter(self):
        a = RankBounds(100, 300, 1000)
        b = RankBounds(150, 400, 1000)
        merged = a.intersect(b)
        assert merged.lower == 150 and merged.upper == 300


class TestMarkovBound:
    def test_contains_true_rank(self, dataset):
        name, data_sorted, sketch = dataset
        n = data_sorted.size
        for phi in QUERY_PHIS:
            t = float(data_sorted[int(phi * n)])
            true_rank = np.searchsorted(data_sorted, t, side="left")
            bounds = markov_bound(sketch, t)
            assert bounds.lower - 1e-6 * n <= true_rank <= bounds.upper + 1e-6 * n, \
                f"{name} phi={phi}"

    def test_out_of_range_thresholds(self, dataset):
        _, data_sorted, sketch = dataset
        n = sketch.count
        below = markov_bound(sketch, float(data_sorted[0]) - 1.0)
        assert below.lower == 0.0 and below.upper == 0.0
        above = markov_bound(sketch, float(data_sorted[-1]) + 1.0)
        assert above.lower == n and above.upper == n

    def test_bounds_ordered_and_within_count(self, dataset):
        _, data_sorted, sketch = dataset
        t = float(np.median(data_sorted))
        bounds = markov_bound(sketch, t)
        assert 0.0 <= bounds.lower <= bounds.upper <= sketch.count

    def test_max_order_restriction_loosens_bound(self, dataset):
        _, data_sorted, sketch = dataset
        t = float(data_sorted[int(0.9 * data_sorted.size)])
        full = markov_bound(sketch, t)
        restricted = markov_bound(sketch, t, max_order=1)
        assert restricted.width >= full.width - 1e-9


class TestRTTBound:
    def test_contains_true_rank(self, dataset):
        name, data_sorted, sketch = dataset
        n = data_sorted.size
        for phi in QUERY_PHIS:
            t = float(data_sorted[int(phi * n)])
            true_rank = np.searchsorted(data_sorted, t, side="left")
            bounds = rtt_bound(sketch, t)
            assert bounds.lower - 1e-4 * n <= true_rank <= bounds.upper + 1e-4 * n, \
                f"{name} phi={phi}"

    def test_tighter_than_markov(self, dataset):
        # The reason the cascade orders RTT after Markov (Section 5.2).
        name, data_sorted, sketch = dataset
        t = float(np.median(data_sorted))
        assert rtt_bound(sketch, t).width <= markov_bound(sketch, t).width + 1e-9, name

    def test_out_of_range_thresholds(self, dataset):
        _, data_sorted, sketch = dataset
        assert rtt_bound(sketch, float(data_sorted[0]) - 1.0).upper == 0.0
        assert rtt_bound(sketch, float(data_sorted[-1]) + 1.0).lower == sketch.count

    def test_degenerate_data_falls_back_to_markov(self):
        # Two distinct values: the Hankel system is singular; the bound
        # must degrade gracefully rather than raise.
        sketch = MomentsSketch.from_data([0.0] * 50 + [1.0] * 50, k=8)
        bounds = rtt_bound(sketch, 0.5)
        assert 0.0 <= bounds.lower <= bounds.upper <= sketch.count


class TestErrorBound:
    def test_bounds_true_error(self, dataset):
        # Appendix E: the certified error must dominate the actual error.
        from repro.core import estimate_quantiles
        name, data_sorted, sketch = dataset
        n = data_sorted.size
        phis = np.asarray([0.1, 0.5, 0.9])
        estimates = estimate_quantiles(sketch, phis)
        for phi, q in zip(phis, estimates):
            certified = quantile_error_bound(sketch, float(q), float(phi))
            true_rank = np.searchsorted(data_sorted, q, side="left")
            actual = abs(true_rank - np.floor(phi * n)) / n
            assert actual <= certified + 1e-3, f"{name} phi={phi}"

    def test_invalid_phi_rejected(self, dataset):
        _, _, sketch = dataset
        with pytest.raises(BoundError):
            quantile_error_bound(sketch, 0.0, 1.5)
