"""Unit tests for the harness observability layer.

The latency aggregator's P50/P95/P99 must be numpy's percentiles of the
recorded samples (no clever streaming approximations inside the tool
that grades approximations), and degenerate sample sets — empty, single
sample — must summarize instead of crashing the report.
"""

import time

import numpy as np
import pytest

from repro.api import QueryTimings
from repro.harness import LatencyAggregator, ResourceSampler, latency_summary


class TestLatencySummary:
    @pytest.mark.parametrize("distribution", [
        np.random.default_rng(0).exponential(0.01, 1000),
        np.random.default_rng(1).lognormal(-5.0, 1.0, 777),
        np.random.default_rng(2).uniform(0.001, 0.2, 50),
    ], ids=["exponential", "lognormal", "uniform"])
    def test_percentiles_match_numpy(self, distribution):
        summary = latency_summary(distribution)
        assert summary["count"] == distribution.size
        assert summary["p50_seconds"] == float(np.percentile(distribution, 50))
        assert summary["p95_seconds"] == float(np.percentile(distribution, 95))
        assert summary["p99_seconds"] == float(np.percentile(distribution, 99))
        assert summary["mean_seconds"] == pytest.approx(distribution.mean())
        assert summary["max_seconds"] == float(distribution.max())

    def test_empty_is_zero_count_not_crash(self):
        assert latency_summary([]) == {"count": 0}

    def test_single_sample_is_every_percentile(self):
        summary = latency_summary([0.042])
        assert summary["count"] == 1
        for key in ("p50_seconds", "p95_seconds", "p99_seconds",
                    "mean_seconds", "max_seconds"):
            assert summary[key] == pytest.approx(0.042)

    def test_percentiles_ordered(self):
        samples = np.random.default_rng(3).exponential(1.0, 500)
        summary = latency_summary(samples)
        assert (summary["p50_seconds"] <= summary["p95_seconds"]
                <= summary["p99_seconds"] <= summary["max_seconds"])


class TestLatencyAggregator:
    def test_groups_by_backend_and_kind(self):
        aggregator = LatencyAggregator()
        for value in (0.1, 0.2, 0.3):
            aggregator.record("cube", "quantile", value)
        aggregator.record("cube", "group_by", 0.5)
        aggregator.record("cluster", "quantile", 0.7)
        summary = aggregator.summary()
        assert summary["cube"]["quantile"]["count"] == 3
        assert summary["cube"]["group_by"]["count"] == 1
        assert summary["cluster"]["quantile"]["count"] == 1
        assert aggregator.count() == 5
        assert aggregator.count("cube") == 4

    def test_empty_aggregator_summarizes_to_empty(self):
        assert LatencyAggregator().summary() == {}

    def test_phase_totals_fold_query_timings(self):
        aggregator = LatencyAggregator()
        aggregator.record("cube", "quantile", 0.1,
                          timings=QueryTimings(planner_seconds=0.01,
                                               merge_seconds=0.02,
                                               solve_seconds=0.03,
                                               solve_calls=2,
                                               solve_route="batched"))
        aggregator.record("cube", "quantile", 0.1,
                          timings=QueryTimings(planner_seconds=0.01,
                                               merge_seconds=0.02,
                                               solve_seconds=0.03,
                                               solve_calls=1,
                                               solve_route="scalar"))
        totals = aggregator.summary()["cube"]["phase_totals"]
        assert totals["planner_seconds"] == pytest.approx(0.02)
        assert totals["merge_seconds"] == pytest.approx(0.04)
        assert totals["solve_seconds"] == pytest.approx(0.06)
        assert totals["solve_calls"] == 3


class TestResourceSampler:
    def test_samples_cpu_and_rss(self):
        with ResourceSampler(interval_seconds=0.02) as sampler:
            deadline = time.perf_counter() + 0.2
            while time.perf_counter() < deadline:  # busy loop: CPU > 0
                sum(range(1000))
        summary = sampler.summary()
        assert summary["samples"] >= 2
        assert summary["rss_max_bytes"] > 1_000_000
        assert summary["cpu_percent_max"] > 0.0
        for sample in sampler.samples:
            assert sample["rss_bytes"] > 0
            assert sample["at_seconds"] >= 0.0

    def test_no_samples_still_reports_rss(self):
        with ResourceSampler(interval_seconds=30.0) as sampler:
            pass
        summary = sampler.summary()
        assert summary["samples"] == 0
        assert summary["rss_max_bytes"] > 0
